//! Differential tests for the skeleton/overlay streaming enumerator:
//! [`for_each_execution`] must visit exactly the candidate set the
//! materialising wrapper produces (same count, same order, same
//! executions, same outcomes), per-candidate verdicts through the view
//! fast path must agree with judging the materialised [`Execution`],
//! early exit must stop the stream, and the candidate limit must count
//! visits rather than materialisations.

use std::ops::ControlFlow;

use proptest::prelude::*;
use weakgpu_axiom::enumerate::{
    condition_witnessed_with, enumerate_executions, for_each_execution, model_outcomes, EnumConfig,
    EnumError,
};
use weakgpu_axiom::model::sc_model;
use weakgpu_axiom::plan::{EvalContext, Plan};
use weakgpu_axiom::{CatModel, Model, RmwAtomicity};
use weakgpu_litmus::{corpus, FenceScope, LitmusTest, ThreadScope};

/// A PTX-shaped scoped model exercising every overlay-dependent base
/// relation class (rf/co/fr and their internal/external splits).
fn scoped_model() -> CatModel {
    CatModel::new(
        "scoped-test",
        "let com = rf | co | fr\n\
         let po-loc-llh = WW(po-loc) | WR(po-loc) | RW(po-loc)\n\
         acyclic (po-loc-llh | com) as sc-per-loc-llh\n\
         let dp = addr | data | ctrl\n\
         acyclic (dp | rf) as no-thin-air\n\
         let rmo(fence) = dp | fence | rfe | coe | fre\n\
         let cta-fence = membar.cta | membar.gl | membar.sys\n\
         acyclic rmo(cta-fence) & cta as cta-constraint\n\
         acyclic rmo(membar.sys) & sys as sys-constraint",
    )
    .unwrap()
    .with_rmw_atomicity(RmwAtomicity::AmongAtomics)
}

fn test_suite() -> Vec<LitmusTest> {
    let mut tests = corpus::all();
    tests.push(corpus::mp(ThreadScope::IntraCta, Some(FenceScope::Cta)));
    tests.push(corpus::lb(ThreadScope::InterCta, Some(FenceScope::Gl)));
    tests
}

#[test]
fn streamed_views_materialise_to_the_candidate_vector() {
    // The visitor's views, converted through `to_execution`/`outcome`,
    // must reproduce `enumerate_executions` element by element — same
    // candidates, same deterministic order.
    let cfg = EnumConfig::default();
    for test in test_suite() {
        let materialised = enumerate_executions(&test, &cfg).unwrap();
        let mut i = 0usize;
        for_each_execution(&test, &cfg, |view| {
            assert!(i < materialised.len(), "{}: extra candidate", test.name());
            assert_eq!(
                view.to_execution(),
                materialised[i].execution,
                "{}: candidate {i} execution",
                test.name()
            );
            assert_eq!(
                view.outcome(),
                materialised[i].outcome,
                "{}: candidate {i} outcome",
                test.name()
            );
            let mut vals = Vec::new();
            view.fill_observed(&mut vals);
            let from_outcome: Vec<i64> = view.outcome().iter().map(|(_, v)| v).collect();
            let mut sorted_vals = vals.clone();
            sorted_vals.sort_unstable();
            let mut sorted_outcome = from_outcome.clone();
            sorted_outcome.sort_unstable();
            assert_eq!(
                sorted_vals,
                sorted_outcome,
                "{}: observed values",
                test.name()
            );
            i += 1;
            ControlFlow::<()>::Continue(())
        })
        .unwrap();
        assert_eq!(i, materialised.len(), "{}: candidate count", test.name());
    }
}

#[test]
fn view_verdicts_match_execution_verdicts_per_candidate() {
    // The view fast path (skeleton-cached bases + overlay refills) must
    // give the same verdict as evaluating the materialised execution,
    // candidate by candidate, through one shared context each.
    let cfg = EnumConfig::default();
    for model in [scoped_model(), sc_model()] {
        let mut view_ctx = EvalContext::new();
        let mut exec_ctx = EvalContext::new();
        for test in test_suite() {
            let mut i = 0usize;
            for_each_execution(&test, &cfg, |view| {
                let via_view = model.allows_view(&mut view_ctx, view);
                let via_exec = model.allows_with(&mut exec_ctx, &view.to_execution());
                assert_eq!(
                    via_view,
                    via_exec,
                    "{} candidate {i} under {}",
                    test.name(),
                    Model::name(&model)
                );
                i += 1;
                ControlFlow::<()>::Continue(())
            })
            .unwrap();
        }
    }
}

#[test]
fn check_view_matches_check_exec() {
    // Full-outcome mode over views vs over materialised executions.
    let model = scoped_model();
    let plan: &Plan = model.plan();
    let cfg = EnumConfig::default();
    let mut view_ctx = EvalContext::new();
    let mut exec_ctx = EvalContext::new();
    for test in [corpus::corr(), corpus::mp(ThreadScope::InterCta, None)] {
        for_each_execution(&test, &cfg, |view| {
            let ours = plan.check_view(&mut view_ctx, view).unwrap();
            let oracle = plan
                .check_exec(&mut exec_ctx, &view.to_execution())
                .unwrap();
            assert_eq!(ours, oracle, "{}", test.name());
            ControlFlow::<()>::Continue(())
        })
        .unwrap();
    }
}

#[test]
fn guarded_immediate_stores_do_not_self_justify() {
    // lb+ctrl: each thread stores 1 only if it read 1 — the classic
    // out-of-thin-air shape. The static write-value fast path must NOT
    // add a guarded store's constant to the read domains (the store only
    // executes in traces where its guard fired), or each store would
    // justify the other's guard and a thin-air (r0=1, r1=1) candidate
    // would appear. The iterated fixed point yields exactly one
    // candidate: both reads see 0, nothing is stored.
    use weakgpu_litmus::build::{imm, ld, reg, setp_eq, st};
    use weakgpu_litmus::{FinalExpr, LitmusTest, Predicate};
    let test = LitmusTest::builder("lb+ctrl")
        .global("x", 0)
        .global("y", 0)
        .thread([
            ld("r0", "x"),
            setp_eq("p", reg("r0"), imm(1)),
            st("y", 1).guarded("p", true),
        ])
        .thread([
            ld("r1", "y"),
            setp_eq("q", reg("r1"), imm(1)),
            st("x", 1).guarded("q", true),
        ])
        .exists(Predicate::And(
            Box::new(Predicate::Eq(FinalExpr::reg(0, "r0"), 1)),
            Box::new(Predicate::Eq(FinalExpr::reg(1, "r1"), 1)),
        ))
        .build()
        .unwrap();
    let cands = enumerate_executions(&test, &EnumConfig::default()).unwrap();
    assert_eq!(cands.len(), 1, "only the all-zero candidate is reachable");
    assert!(
        !cands.iter().any(|c| test.cond().witnessed_by(&c.outcome)),
        "no candidate may witness the thin-air outcome"
    );
}

#[test]
fn early_exit_stops_the_stream() {
    let test = corpus::corr();
    let cfg = EnumConfig::default();
    let total = enumerate_executions(&test, &cfg).unwrap().len();
    assert!(total > 3);
    for stop_at in [1usize, 2, total] {
        let mut visits = 0usize;
        let out = for_each_execution(&test, &cfg, |_| {
            visits += 1;
            if visits == stop_at {
                ControlFlow::Break(visits)
            } else {
                ControlFlow::Continue(())
            }
        })
        .unwrap();
        assert_eq!(out, Some(stop_at));
        assert_eq!(visits, stop_at, "the visitor ran past its break");
    }
}

#[test]
fn condition_witnessed_with_agrees_and_exits_early() {
    let cfg = EnumConfig::default();
    for model in [scoped_model(), sc_model()] {
        let mut ctx = EvalContext::new();
        for test in test_suite() {
            let full = model_outcomes(&test, &model, &cfg).unwrap();
            let fast = condition_witnessed_with(&test, &model, &cfg, &mut ctx).unwrap();
            assert_eq!(
                fast,
                full.condition_witnessed,
                "{} under {}",
                test.name(),
                Model::name(&model)
            );
        }
    }

    // Early exit beats the candidate limit: find where the first allowed
    // witness sits, cap the visit budget exactly there, and the fast
    // query must still succeed while the full enumeration errors out.
    let test = corpus::corr();
    let permissive = CatModel::new("anything-goes", "").unwrap();
    let cands = enumerate_executions(&test, &EnumConfig::default()).unwrap();
    let first_witness = cands
        .iter()
        .position(|c| test.cond().witnessed_by(&c.outcome))
        .expect("corr has a weak candidate");
    let capped = EnumConfig {
        max_executions: first_witness + 1,
        ..EnumConfig::default()
    };
    let mut ctx = EvalContext::new();
    assert_eq!(
        condition_witnessed_with(&test, &permissive, &capped, &mut ctx),
        Ok(true)
    );
    assert_eq!(
        model_outcomes(&test, &permissive, &capped).unwrap_err(),
        EnumError::TooManyExecutions
    );
}

/// Random corpus variant: idiom × scope × fence.
fn arb_corpus_test() -> impl Strategy<Value = LitmusTest> {
    let scopes = [ThreadScope::IntraCta, ThreadScope::InterCta];
    let fences = [
        None,
        Some(FenceScope::Cta),
        Some(FenceScope::Gl),
        Some(FenceScope::Sys),
    ];
    (0..5usize, 0..2usize, 0..4usize).prop_map(move |(idiom, s, f)| {
        let (scope, fence) = (scopes[s], fences[f]);
        match idiom {
            0 => corpus::mp(scope, fence),
            1 => corpus::sb(scope, fence),
            2 => corpus::lb(scope, fence),
            3 => match fence {
                Some(fs) => corpus::corr_fenced(fs),
                None => corpus::corr(),
            },
            _ => corpus::dlb_mp(f % 2 == 0),
        }
    })
}

/// A random scoped `.cat` model over overlay- and skeleton-derived
/// bases alike.
fn arb_model() -> impl Strategy<Value = CatModel> {
    let axioms = [
        "acyclic (po | rf | co | fr) as sc",
        "acyclic (po-loc | rf | co | fr) as coherence",
        "irreflexive (fre ; coe ; rfi?) as obs",
        "acyclic ((addr | data | ctrl) | rfe | membar.gl) & cta as scoped",
        "empty rmw \\ rmw as trivial",
    ];
    prop::collection::vec(0..axioms.len(), 1..3).prop_map(move |picks| {
        let src: Vec<&str> = picks.iter().map(|&i| axioms[i]).collect();
        // Duplicate axiom names are fine for `allows`; rename per line.
        let src = src
            .iter()
            .enumerate()
            .map(|(i, a)| a.replace(" as ", &format!(" as a{i}-")))
            .collect::<Vec<_>>()
            .join("\n");
        CatModel::new("random", &src).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The headline streaming property over random corpus variants and
    /// random models: `model_outcomes` (streamed, view-judged) is
    /// bit-identical to the materialise-then-judge loop.
    #[test]
    fn streaming_model_outcomes_match_materialised(
        test in arb_corpus_test(),
        model in arb_model(),
    ) {
        let cfg = EnumConfig::default();
        let streamed = model_outcomes(&test, &model, &cfg).unwrap();

        let cands = enumerate_executions(&test, &cfg).unwrap();
        let mut ctx = EvalContext::new();
        let mut all = std::collections::BTreeSet::new();
        let mut allowed = std::collections::BTreeSet::new();
        let mut num_allowed = 0usize;
        let mut witnessed = false;
        for c in &cands {
            all.insert(c.outcome.clone());
            if model.allows_with(&mut ctx, &c.execution) {
                num_allowed += 1;
                if test.cond().witnessed_by(&c.outcome) {
                    witnessed = true;
                }
                allowed.insert(c.outcome.clone());
            }
        }
        prop_assert_eq!(streamed.num_candidates, cands.len());
        prop_assert_eq!(streamed.num_allowed, num_allowed);
        prop_assert_eq!(streamed.condition_witnessed, witnessed);
        prop_assert_eq!(&streamed.all_outcomes, &all);
        prop_assert_eq!(&streamed.allowed_outcomes, &allowed);
    }

    /// One shared context across interleaved tests must never leak
    /// skeleton-cached state between enumerations (regression guard for
    /// the two-level epoch machinery).
    #[test]
    fn shared_context_across_tests_is_state_free(
        tests in prop::collection::vec(arb_corpus_test(), 2..4),
    ) {
        let model = scoped_model();
        let cfg = EnumConfig::default();
        let mut shared = EvalContext::new();
        for test in &tests {
            let with_shared =
                weakgpu_axiom::model_outcomes_with(test, &model, &cfg, &mut shared).unwrap();
            let with_fresh = model_outcomes(test, &model, &cfg).unwrap();
            prop_assert_eq!(with_shared, with_fresh, "{}", test.name());
        }
    }
}
