//! Proves the ISSUE-5 allocation bound: the steady-state streaming
//! visitor loop performs **zero heap allocation per candidate**.
//!
//! A counting global allocator wraps the system allocator. After the
//! enumeration scratch has warmed, the allocation counter is read
//! inside the visitor at the first and at the last candidate: every
//! inter-candidate step (overlay rewrites, skeleton refills for later
//! trace combinations, rf/co advancement) lies between those two reads,
//! so their equality is exactly the claim.

use std::alloc::{GlobalAlloc, Layout, System};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter has
// no effect on allocation behaviour.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

use weakgpu_axiom::enumerate::{for_each_execution, EnumConfig};
use weakgpu_litmus::{corpus, ThreadScope};

#[test]
fn steady_state_visitor_loop_is_allocation_free() {
    let cfg = EnumConfig::default();
    for test in [
        corpus::corr(),
        corpus::mp(ThreadScope::InterCta, None),
        corpus::sb(ThreadScope::IntraCta, None),
        corpus::dlb_lb(false),
    ] {
        // Warm the thread-local enumeration scratch and the symbolic
        // layer's buffers for this test's shapes.
        for _ in 0..2 {
            for_each_execution(&test, &cfg, |_| ControlFlow::<()>::Continue(())).unwrap();
        }

        let mut candidates = 0usize;
        let mut at_first = 0u64;
        let mut at_last = 0u64;
        for_each_execution(&test, &cfg, |_| {
            let now = ALLOCS.load(Ordering::Relaxed);
            if candidates == 0 {
                at_first = now;
            }
            at_last = now;
            candidates += 1;
            ControlFlow::<()>::Continue(())
        })
        .unwrap();

        assert!(
            candidates > 1,
            "{} must have several candidates",
            test.name()
        );
        assert_eq!(
            at_first,
            at_last,
            "{}: {} heap allocations across {} candidates in the steady-state visitor loop",
            test.name(),
            at_last - at_first,
            candidates
        );
    }
}
