//! Proves the ISSUE-5/6 allocation bounds: the steady-state streaming
//! visitor loop performs **zero heap allocation per candidate**, and
//! the pruned decision-tree walk performs **zero heap allocation per
//! visited class** — partial interval evaluations included.
//!
//! A counting global allocator wraps the system allocator. After the
//! enumeration scratch has warmed, the allocation counter is read
//! inside the visitor at the first and at the last visit: every
//! inter-visit step (overlay rewrites, skeleton refills for later
//! trace combinations, rf/co advancement, three-valued partial checks)
//! lies between those two reads, so their equality is exactly the
//! claim. The measurement harness is shared by both tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter has
// no effect on allocation behaviour.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

use weakgpu_axiom::enumerate::{
    for_each_execution, for_each_execution_batched, for_each_execution_pruned, EnumConfig,
    PruneStats,
};
use weakgpu_axiom::model::sc_model;
use weakgpu_axiom::plan::EvalContext;
use weakgpu_litmus::{corpus, corpus_extra, ThreadScope};

/// The shared measurement harness: `enumerate` must invoke the passed
/// hook once per visited node (candidate or pruned class). Returns the
/// visit count and the allocations observed between the first and the
/// last visit — zero is the steady-state claim both tests assert.
fn allocs_across_visits(enumerate: impl FnOnce(&mut dyn FnMut())) -> (usize, u64) {
    let mut visits = 0usize;
    let mut at_first = 0u64;
    let mut at_last = 0u64;
    enumerate(&mut || {
        let now = ALLOCS.load(Ordering::Relaxed);
        if visits == 0 {
            at_first = now;
        }
        at_last = now;
        visits += 1;
    });
    (visits, at_last - at_first)
}

#[test]
fn steady_state_visitor_loop_is_allocation_free() {
    let cfg = EnumConfig::default();
    for test in [
        corpus::corr(),
        corpus::mp(ThreadScope::InterCta, None),
        corpus::sb(ThreadScope::IntraCta, None),
        corpus::dlb_lb(false),
    ] {
        // Warm the thread-local enumeration scratch and the symbolic
        // layer's buffers for this test's shapes.
        for _ in 0..2 {
            for_each_execution(&test, &cfg, |_| ControlFlow::<()>::Continue(())).unwrap();
        }

        let (candidates, allocs) = allocs_across_visits(|visit| {
            for_each_execution(&test, &cfg, |_| {
                visit();
                ControlFlow::<()>::Continue(())
            })
            .unwrap();
        });

        assert!(
            candidates > 1,
            "{} must have several candidates",
            test.name()
        );
        assert_eq!(
            allocs,
            0,
            "{}: {allocs} heap allocations across {candidates} candidates \
             in the steady-state visitor loop",
            test.name()
        );
    }
}

#[test]
fn steady_state_pruned_walk_is_allocation_free() {
    let model = sc_model();
    let cfg = EnumConfig {
        pruning: true,
        ..EnumConfig::default()
    };
    let mut ctx = EvalContext::new();
    for test in [
        // The fan shape exercises real subtree cuts (forced classes);
        // the corpus tests cover the leaf-heavy degenerate walks.
        corpus_extra::corr_fan(2, 6),
        corpus::corr(),
        corpus::mp(ThreadScope::InterCta, None),
        corpus::dlb_lb(false),
    ] {
        // Warm the enumeration scratch and the evaluation context's
        // interval buffers (`bases_hi`/`regs_hi` grow on first use).
        for _ in 0..2 {
            let mut stats = PruneStats::default();
            for_each_execution_pruned(&test, &model, &cfg, &mut ctx, &mut stats, |_| {
                ControlFlow::<()>::Continue(())
            })
            .unwrap();
        }

        let mut stats = PruneStats::default();
        let (classes, allocs) = allocs_across_visits(|visit| {
            for_each_execution_pruned(&test, &model, &cfg, &mut ctx, &mut stats, |_| {
                visit();
                ControlFlow::<()>::Continue(())
            })
            .unwrap();
        });

        assert!(classes > 1, "{} must visit several classes", test.name());
        assert_eq!(classes as u64, stats.classes_visited, "{}", test.name());
        assert_eq!(
            allocs,
            0,
            "{}: {allocs} heap allocations across {classes} classes \
             in the steady-state pruned walk",
            test.name()
        );
    }
}

#[test]
fn steady_state_incremental_walk_is_allocation_free() {
    // The incremental engine pushes and pops path deltas through a
    // word-level undo journal. Once the journal, the per-level stack,
    // the maintained relations and the Pearce-Kelly scratch have grown
    // to the walk's high-water mark (the warm-up runs), a steady-state
    // walk must not allocate per node: every push records into reused
    // buffers and every pop replays them in place — across combination
    // resets included.
    let model = sc_model();
    let mut ctx = EvalContext::new();
    for batching in [false, true] {
        let cfg = EnumConfig {
            pruning: true,
            incremental: true,
            batching,
            ..EnumConfig::default()
        };
        for test in [
            corpus_extra::corr_fan(2, 6),
            corpus::corr(),
            corpus::mp(ThreadScope::InterCta, None),
            corpus::dlb_lb(false),
        ] {
            // Warm the enumeration scratch, the trace cache, the
            // interval buffers and the incremental journal.
            for _ in 0..2 {
                let mut stats = PruneStats::default();
                for_each_execution_pruned(&test, &model, &cfg, &mut ctx, &mut stats, |_| {
                    ControlFlow::<()>::Continue(())
                })
                .unwrap();
            }

            let mut stats = PruneStats::default();
            let (classes, allocs) = allocs_across_visits(|visit| {
                for_each_execution_pruned(&test, &model, &cfg, &mut ctx, &mut stats, |_| {
                    visit();
                    ControlFlow::<()>::Continue(())
                })
                .unwrap();
            });

            assert!(classes > 1, "{} must visit several classes", test.name());
            assert_eq!(classes as u64, stats.classes_visited, "{}", test.name());
            assert_eq!(
                allocs,
                0,
                "{} (batching={batching}): {allocs} heap allocations across                  {classes} classes in the steady-state incremental walk",
                test.name()
            );
        }
    }
}

#[test]
fn steady_state_batched_walk_is_allocation_free() {
    // The bit-plane batch loop must allocate nothing per batch once the
    // lane planes have grown to the skeleton's size: packing lanes,
    // broadcasting skeleton-derived relations, the lane-parallel plan
    // pass and the per-leaf report pass all run in reused buffers —
    // on the exhaustive stream and composed with pruning alike.
    let model = sc_model();
    let mut ctx = EvalContext::new();
    for pruning in [false, true] {
        let cfg = EnumConfig {
            pruning,
            batching: true,
            ..EnumConfig::default()
        };
        for test in [
            // The fan shape forms dense multi-lane batches; the corpus
            // tests cover small batches mixed with scalar leaves.
            corpus_extra::corr_fan(2, 6),
            corpus::corr(),
            corpus::mp(ThreadScope::InterCta, None),
            corpus::dlb_lb(false),
        ] {
            let mut run = |stats: &mut PruneStats, visit: &mut dyn FnMut()| {
                if pruning {
                    for_each_execution_pruned(&test, &model, &cfg, &mut ctx, stats, |_| {
                        visit();
                        ControlFlow::<()>::Continue(())
                    })
                    .unwrap();
                } else {
                    for_each_execution_batched(&test, &model, &cfg, &mut ctx, stats, |_, _| {
                        visit();
                        ControlFlow::<()>::Continue(())
                    })
                    .unwrap();
                }
            };
            // Warm the enumeration scratch, the batch's lane planes and
            // the evaluation context's lane registers.
            for _ in 0..2 {
                let mut stats = PruneStats::default();
                run(&mut stats, &mut || {});
            }

            let mut stats = PruneStats::default();
            let (nodes, allocs) = allocs_across_visits(|visit| run(&mut stats, visit));

            assert!(nodes > 1, "{} must visit several nodes", test.name());
            assert_eq!(nodes as u64, stats.classes_visited, "{}", test.name());
            // Only shapes with multi-choice trailing axes batch; the
            // single-choice corpus tests degenerate to scalar leaves
            // (and must still allocate nothing).
            if test.name().contains("fan") {
                assert!(
                    stats.batches_formed > 0,
                    "{} (pruning={pruning}) must form batches",
                    test.name()
                );
            }
            assert_eq!(
                allocs,
                0,
                "{} (pruning={pruning}): {allocs} heap allocations across {nodes} \
                 visits and {} batches in the steady-state batched walk",
                test.name(),
                stats.batches_formed
            );
        }
    }
}
