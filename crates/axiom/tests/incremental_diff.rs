//! Incremental ≡ from-scratch, proven differentially.
//!
//! [`EnumConfig::incremental`] replaces the pruned walk's per-node
//! interval refills and from-scratch cycle searches with push/pop
//! deltas along the decision-tree path (a word-level undo journal over
//! the maintained plan state plus a Pearce–Kelly topological order per
//! acyclicity check). The only safe way to ship that is the same
//! discipline `pruning_diff.rs` and `batching_diff.rs` established:
//! prove, bit for bit, that nothing observable changes. For **every**
//! built-in model (plus the ablation and the native model, which takes
//! the `partial_verdict` default fallback), over the full corpus, the
//! generated `small` family and random corpus × `.cat` pairs, the
//! incremental [`ModelOutcomes`] and the walk-shape [`PruneStats`]
//! must equal the from-scratch pruned ones — with and without batching
//! stacked on top — and budget/early-exit semantics must trip at
//! exactly the same visit.

use std::ops::ControlFlow;

use proptest::prelude::*;
use weakgpu_axiom::enumerate::{
    condition_witnessed_with, for_each_execution_pruned, model_outcomes_counted, EnumConfig,
    EnumError, ModelOutcomes, PruneStats,
};
use weakgpu_axiom::plan::EvalContext;
use weakgpu_axiom::{CatModel, Model};
use weakgpu_diy::{generate, GenConfig};
use weakgpu_litmus::{corpus, corpus_extra, FenceScope, LitmusTest, ThreadScope};
use weakgpu_models::{all_models, native::NativePtxModel, ptx_model_without_llh};

fn pruned_cfg() -> EnumConfig {
    EnumConfig {
        pruning: true,
        ..EnumConfig::default()
    }
}

fn incremental_cfg() -> EnumConfig {
    EnumConfig {
        pruning: true,
        incremental: true,
        ..EnumConfig::default()
    }
}

/// Runs one (test, model) pair under the from-scratch pruned walk and
/// the incremental walk (both with and without batching) and asserts
/// the outcomes and walk shapes are identical.
fn assert_incremental_matches(
    test: &LitmusTest,
    model: &dyn Model,
    ctx: &mut EvalContext,
) -> (ModelOutcomes, PruneStats) {
    let (baseline, base_stats) = model_outcomes_counted(test, model, &pruned_cfg(), ctx)
        .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
    let (incremental, inc_stats) = model_outcomes_counted(test, model, &incremental_cfg(), ctx)
        .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
    assert_eq!(
        incremental,
        baseline,
        "{} under {}: incremental and from-scratch ModelOutcomes diverge",
        test.name(),
        model.name()
    );
    // PruneStats equality is walk-shape equality (the measurement
    // fields are excluded by its PartialEq): identical cuts at
    // identical nodes.
    assert_eq!(
        inc_stats,
        base_stats,
        "{} under {}: incremental walk took different cuts",
        test.name(),
        model.name()
    );
    // Batching stacked on top must not perturb anything either — the
    // lane sweeps are seeded from the maintained order, and seeding
    // must be invisible.
    let batched = EnumConfig {
        batching: true,
        ..pruned_cfg()
    };
    let inc_batched = EnumConfig {
        batching: true,
        ..incremental_cfg()
    };
    let (b_out, b_stats) = model_outcomes_counted(test, model, &batched, ctx)
        .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
    let (ib_out, ib_stats) = model_outcomes_counted(test, model, &inc_batched, ctx)
        .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
    assert_eq!(
        ib_out,
        b_out,
        "{} under {}: incremental+batched outcomes diverge",
        test.name(),
        model.name()
    );
    assert_eq!(
        ib_stats,
        b_stats,
        "{} under {}: incremental+batched walk shape diverges",
        test.name(),
        model.name()
    );
    (incremental, inc_stats)
}

fn test_suite() -> Vec<LitmusTest> {
    let mut tests = corpus::all();
    tests.extend([
        corpus::mp(ThreadScope::IntraCta, Some(FenceScope::Cta)),
        corpus::sb(ThreadScope::IntraCta, None),
        corpus::lb(ThreadScope::InterCta, Some(FenceScope::Cta)),
        corpus::mp_dep(ThreadScope::InterCta, FenceScope::Gl),
    ]);
    tests
}

#[test]
fn incremental_matches_for_every_builtin_model() {
    let mut ctx = EvalContext::new();
    for model in all_models() {
        for test in test_suite() {
            assert_incremental_matches(&test, &model, &mut ctx);
        }
    }
}

#[test]
fn incremental_matches_for_the_ablation_and_native_models() {
    let mut ctx = EvalContext::new();
    for test in test_suite() {
        assert_incremental_matches(&test, &ptx_model_without_llh(), &mut ctx);
        // No plan at all: `partial_verdict` stays at the trait default,
        // the incremental flag has nothing to latch onto, and the walk
        // must still agree bit for bit.
        assert_incremental_matches(&test, &NativePtxModel::new(), &mut ctx);
    }
}

#[test]
fn incremental_matches_over_the_small_family() {
    let family = generate(&GenConfig::small());
    assert!(!family.is_empty());
    let mut ctx = EvalContext::new();
    for model in all_models() {
        for test in &family {
            assert_incremental_matches(test, &model, &mut ctx);
        }
    }
}

#[test]
fn incremental_witness_query_matches() {
    let mut ctx = EvalContext::new();
    for model in all_models() {
        for test in test_suite() {
            let slow = condition_witnessed_with(&test, &model, &pruned_cfg(), &mut ctx).unwrap();
            let fast =
                condition_witnessed_with(&test, &model, &incremental_cfg(), &mut ctx).unwrap();
            assert_eq!(fast, slow, "{} under {}", test.name(), Model::name(&model));
        }
    }
}

/// The `corr-fan` capability shape: SC's single acyclicity check over
/// row-local compositions is exactly what the incremental engine
/// maintains, so the deep fan must produce the identical collapsed walk
/// — and actually exercise the delta path (register refills far below
/// one full refill per cut attempt).
#[test]
fn incremental_handles_the_oversized_fan() {
    let test = corpus_extra::corr_fan(2, 9);
    let model = weakgpu_models::sc_model();
    let budget = EnumConfig {
        max_traces_per_thread: 1 << 13,
        max_executions: 200_000,
        pruning: true,
        ..EnumConfig::default()
    };
    let inc_budget = EnumConfig {
        incremental: true,
        ..budget
    };
    let mut ctx = EvalContext::new();
    let (baseline, base_stats) = model_outcomes_counted(&test, &model, &budget, &mut ctx).unwrap();
    let (incremental, inc_stats) =
        model_outcomes_counted(&test, &model, &inc_budget, &mut ctx).unwrap();
    assert_eq!(incremental, baseline);
    assert_eq!(inc_stats, base_stats);
    assert!(!incremental.condition_witnessed);
    // The from-scratch walk refills every overlay register of the plan
    // at every attempt; the incremental walk pays per-level deltas. On
    // a shape this cut-heavy the counter must collapse by a wide
    // margin.
    assert!(
        inc_stats.registers_refilled * 2 < base_stats.registers_refilled,
        "delta evaluation did not reduce refills: {} (incremental) vs {} (from scratch)",
        inc_stats.registers_refilled,
        base_stats.registers_refilled
    );
}

/// Budget semantics are node-accurate: a `max_executions` that trips
/// mid-walk must trip at exactly the same visit under incremental
/// evaluation.
#[test]
fn incremental_budget_trips_at_the_same_visit() {
    let test = corpus_extra::corr_fan(2, 6);
    let model = weakgpu_models::sc_model();
    let mut ctx = EvalContext::new();
    let (_, full) = model_outcomes_counted(&test, &model, &pruned_cfg(), &mut ctx).unwrap();
    assert!(full.classes_visited > 4);
    for budget in [1usize, 2, full.classes_visited as usize - 1] {
        let cut = EnumConfig {
            max_executions: budget,
            ..pruned_cfg()
        };
        let inc_cut = EnumConfig {
            incremental: true,
            ..cut
        };
        let base = model_outcomes_counted(&test, &model, &cut, &mut ctx).unwrap_err();
        let inc = model_outcomes_counted(&test, &model, &inc_cut, &mut ctx).unwrap_err();
        assert_eq!(base, EnumError::TooManyExecutions);
        assert_eq!(inc, base, "budget {budget} tripped differently");
    }
}

/// Early exit (`ControlFlow::Break`) stops the incremental walk at the
/// same class, with the same partial counters.
#[test]
fn incremental_early_exit_stops_the_walk() {
    let model = weakgpu_models::sc_model();
    let test = corpus_extra::corr_fan(2, 5);
    let mut ctx = EvalContext::new();
    let mut total = 0u64;
    let mut stats = PruneStats::default();
    for_each_execution_pruned(&test, &model, &incremental_cfg(), &mut ctx, &mut stats, |_| {
        total += 1;
        ControlFlow::<()>::Continue(())
    })
    .unwrap();
    assert!(total > 3);
    for stop_at in [1u64, 2, total] {
        let mut stats = PruneStats::default();
        let mut visits = 0u64;
        let out = for_each_execution_pruned(
            &test,
            &model,
            &incremental_cfg(),
            &mut ctx,
            &mut stats,
            |_| {
                visits += 1;
                if visits == stop_at {
                    ControlFlow::Break(visits)
                } else {
                    ControlFlow::Continue(())
                }
            },
        )
        .unwrap();
        assert_eq!(out, Some(stop_at));
        assert_eq!(visits, stop_at, "the visitor ran past its break");
        assert_eq!(stats.classes_visited, stop_at);
    }
}

/// One evaluation context serving interleaved incremental and
/// from-scratch runs across *different* models must never leak state:
/// the maintained journal is keyed on (plan, skeleton, combination) and
/// re-seeds itself on any mismatch.
#[test]
fn shared_context_survives_interleaved_models() {
    let mut ctx = EvalContext::new();
    let models = all_models();
    let mut baselines = Vec::new();
    for model in &models {
        for test in test_suite() {
            baselines.push(model_outcomes_counted(&test, model, &pruned_cfg(), &mut ctx).unwrap());
        }
    }
    let mut at = 0;
    for model in &models {
        for test in test_suite() {
            let got = model_outcomes_counted(&test, model, &incremental_cfg(), &mut ctx).unwrap();
            assert_eq!(
                got,
                baselines[at],
                "{} under {} diverged on a shared context",
                test.name(),
                model.name()
            );
            at += 1;
        }
    }
}

/// Random corpus variant: idiom × scope × fence (the shape shared by
/// the other differential batteries).
fn arb_corpus_test() -> impl Strategy<Value = LitmusTest> {
    let scopes = [ThreadScope::IntraCta, ThreadScope::InterCta];
    let fences = [
        None,
        Some(FenceScope::Cta),
        Some(FenceScope::Gl),
        Some(FenceScope::Sys),
    ];
    (0..5usize, 0..2usize, 0..4usize).prop_map(move |(idiom, s, f)| {
        let (scope, fence) = (scopes[s], fences[f]);
        match idiom {
            0 => corpus::mp(scope, fence),
            1 => corpus::sb(scope, fence),
            2 => corpus::lb(scope, fence),
            3 => match fence {
                Some(fs) => corpus::corr_fenced(fs),
                None => corpus::corr(),
            },
            _ => corpus::dlb_mp(f % 2 == 0),
        }
    })
}

/// Random `.cat` programs mixing row-local axioms (which take the
/// incremental path) with sequencing/closure axioms (which must fall
/// back to from-scratch partial evaluation, transparently).
fn arb_model() -> impl Strategy<Value = CatModel> {
    let axioms = [
        "acyclic (po | rf | co | fr) as sc",
        "acyclic (po-loc | rf | co | fr) as coherence",
        "irreflexive (fre ; coe ; rfi?) as obs",
        "acyclic ((addr | data | ctrl) | rfe | membar.gl) & cta as scoped",
        "empty rmw \\ rmw as trivial",
        "irreflexive ((rf | co) \\ po) ; fr as mixed",
    ];
    prop::collection::vec(0..axioms.len(), 1..3).prop_map(move |picks| {
        let src: Vec<&str> = picks.iter().map(|&i| axioms[i]).collect();
        let src = src
            .iter()
            .enumerate()
            .map(|(i, a)| a.replace(" as ", &format!(" as a{i}-")))
            .collect::<Vec<_>>()
            .join("\n");
        CatModel::new("random", &src).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The headline property over random corpus variants × random
    /// models, row-local and fallback plans alike.
    #[test]
    fn incremental_matches_on_random_pairs(
        test in arb_corpus_test(),
        model in arb_model(),
    ) {
        let mut ctx = EvalContext::new();
        assert_incremental_matches(&test, &model, &mut ctx);
    }
}
