//! Differential tests: the compiled evaluation plan ([`Plan`]) against
//! the legacy tree-walking interpreter ([`CatProgram::check`]), which is
//! retained exactly as the oracle for this suite.
//!
//! Random `.cat` programs (operators, filters, `let` bindings, function
//! definitions and applications) are evaluated over random relation
//! environments, and over real enumerated executions, asserting the two
//! evaluators return identical check outcomes.

use proptest::prelude::*;
use std::collections::BTreeMap;
use weakgpu_axiom::cat::{CatProgram, Expr};
use weakgpu_axiom::enumerate::{enumerate_executions, EnumConfig};
use weakgpu_axiom::plan::{EvalContext, Plan};
use weakgpu_axiom::relation::{EventSet, Relation};
use weakgpu_litmus::{corpus, FenceScope, ThreadScope};

const N: usize = 6;

/// Identifiers guaranteed bound: either in the random environment (env
/// strategy below) or by `Execution::base_relations`.
const BASE_IDS: [&str; 10] = [
    "po",
    "po-loc",
    "rf",
    "co",
    "fr",
    "rfe",
    "ext",
    "int",
    "membar.gl",
    "id",
];

fn arb_ident() -> impl Strategy<Value = String> {
    (0..BASE_IDS.len()).prop_map(|i| BASE_IDS[i].to_owned())
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        4 => arb_ident().prop_map(Expr::Id),
        1 => Just(Expr::Zero),
        // References to let-bound relations and functions that the
        // program strategy below defines up front.
        2 => Just(Expr::Id("d0".to_owned())),
        2 => (Just("f0".to_owned()), arb_ident().prop_map(Expr::Id))
            .prop_map(|(n, a)| Expr::App(n, Box::new(a))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Union(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Inter(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Diff(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Seq(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Expr::Inverse(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Plus(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Star(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Opt(Box::new(a))),
            (Just("WW".to_owned()), inner.clone()).prop_map(|(n, a)| Expr::App(n, Box::new(a))),
            (Just("RR".to_owned()), inner.clone()).prop_map(|(n, a)| Expr::App(n, Box::new(a))),
            (Just("WR".to_owned()), inner.clone()).prop_map(|(n, a)| Expr::App(n, Box::new(a))),
            (Just("f0".to_owned()), inner).prop_map(|(n, a)| Expr::App(n, Box::new(a))),
        ]
    })
}

/// Expressions for the body of the `f0` function definition: never apply
/// `f0` itself, so inlining (and the interpreter's substitution)
/// terminates.
fn arb_fun_body() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![arb_ident().prop_map(Expr::Id), Just(Expr::Zero)];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Union(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Seq(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Expr::Plus(Box::new(a))),
        ]
    })
}

/// A random program: a relation binding `d0`, a function binding `f0`,
/// then a mix of further bindings and checks over them.
fn arb_program() -> impl Strategy<Value = CatProgram> {
    (
        arb_fun_body(),
        prop::collection::vec((arb_expr(), 0..4usize), 1..5),
    )
        .prop_map(|(fun_body_seed, items)| {
            let mut src = String::new();
            src.push_str("let d0 = po | rfe\n");
            // The function body mixes its parameter into a random
            // expression so application sites genuinely substitute.
            src.push_str(&format!("let f0(x) = (x ; {fun_body_seed}) | RW(x)\n"));
            for (i, (expr, kind)) in items.iter().enumerate() {
                let stmt = match kind {
                    0 => format!("let e{i} = {expr}"),
                    1 => format!("acyclic {expr} as c{i}"),
                    2 => format!("irreflexive {expr} as c{i}"),
                    _ => format!("empty {expr} as c{i}"),
                };
                src.push_str(&stmt);
                src.push('\n');
            }
            CatProgram::parse(&src).expect("generated statements parse")
        })
}

/// A random environment binding every identifier in [`BASE_IDS`].
fn arb_env() -> impl Strategy<Value = (BTreeMap<String, Relation>, EventSet, EventSet)> {
    let arb_rel =
        prop::collection::vec((0..N, 0..N), 0..8).prop_map(|pairs| Relation::from_pairs(N, pairs));
    (
        prop::collection::vec(arb_rel, BASE_IDS.len()),
        prop::collection::vec(prop::bool::ANY, N),
    )
        .prop_map(|(rels, read_mask)| {
            let base: BTreeMap<String, Relation> =
                BASE_IDS.iter().map(|n| n.to_string()).zip(rels).collect();
            let reads = EventSet::from_iter_n(N, (0..N).filter(|&i| read_mask[i]));
            let writes = EventSet::from_iter_n(N, (0..N).filter(|&i| !read_mask[i]));
            (base, reads, writes)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The headline differential property: over random programs and
    /// random environments, the compiled plan and the tree-walk
    /// interpreter produce identical named check outcomes, and the
    /// short-circuiting fast path agrees with their conjunction.
    #[test]
    fn plan_matches_tree_walk_on_random_programs(
        prog in arb_program(),
        (base, reads, writes) in arb_env(),
    ) {
        let plan = Plan::compile(&prog)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{prog}")))?;
        let mut ctx = EvalContext::new();
        let oracle = prog.check(&base, &reads, &writes).unwrap();
        let ours = plan.check_in_env(&mut ctx, &base, &reads, &writes).unwrap();
        prop_assert_eq!(&ours, &oracle, "program:\n{}", prog);
        let fast = plan.allows_in_env(&mut ctx, &base, &reads, &writes).unwrap();
        prop_assert_eq!(fast, oracle.iter().all(|c| c.passed), "program:\n{}", prog);
    }

    /// One shared context across many programs must never leak state
    /// between evaluations (regression guard for the epoch machinery).
    #[test]
    fn shared_context_is_state_free(
        progs in prop::collection::vec(arb_program(), 2..4),
        (base, reads, writes) in arb_env(),
    ) {
        let mut shared = EvalContext::new();
        for prog in &progs {
            let plan = Plan::compile(prog).unwrap();
            let with_shared = plan.check_in_env(&mut shared, &base, &reads, &writes).unwrap();
            let with_fresh = plan
                .check_in_env(&mut EvalContext::new(), &base, &reads, &writes)
                .unwrap();
            prop_assert_eq!(with_shared, with_fresh);
        }
    }
}

/// Every candidate execution of the corpus idioms, judged through the
/// plan's execution fast path and through the tree-walk oracle, must get
/// the same verdict — and the full-outcome mode must match check by
/// check.
#[test]
fn plan_matches_tree_walk_on_corpus_executions() {
    let programs = [
        "let com = rf | co | fr\nacyclic (po | com) as sc",
        "let com = rf | co | fr\nlet po-loc-llh = WW(po-loc) | WR(po-loc) | RW(po-loc)\n\
         acyclic (po-loc-llh | com) as sc-per-loc-llh\n\
         let dp = addr | data | ctrl\nacyclic (dp | rf) as no-thin-air\n\
         let rmo(fence) = dp | fence | rfe | co | fr\n\
         let cta-fence = membar.cta | membar.gl | membar.sys\n\
         acyclic rmo(cta-fence) & cta as cta-constraint\n\
         acyclic rmo(membar.sys) & sys as sys-constraint",
        "irreflexive (fre ; coe ; rfi?) as scratchy\nempty rmw \\ rmw as trivially",
    ];
    let cfg = EnumConfig::default();
    let mut ctx = EvalContext::new();
    let tests = [
        corpus::corr(),
        corpus::mp(ThreadScope::InterCta, Some(FenceScope::Cta)),
        corpus::sb(ThreadScope::IntraCta, None),
        corpus::lb(ThreadScope::InterCta, Some(FenceScope::Gl)),
        corpus::cas_sl(false),
    ];
    for src in programs {
        let prog = CatProgram::parse(src).unwrap();
        let plan = Plan::compile(&prog).unwrap();
        for test in &tests {
            for (i, cand) in enumerate_executions(test, &cfg).unwrap().iter().enumerate() {
                let exec = &cand.execution;
                let oracle = prog
                    .check(&exec.base_relations(), &exec.read_set(), &exec.write_set())
                    .unwrap();
                assert_eq!(
                    plan.check_exec(&mut ctx, exec).unwrap(),
                    oracle,
                    "{}: candidate {i} of {src:?}",
                    test.name()
                );
                assert_eq!(
                    plan.allows_exec(&mut ctx, exec).unwrap(),
                    oracle.iter().all(|c| c.passed),
                    "{}: candidate {i} fast path of {src:?}",
                    test.name()
                );
            }
        }
    }
}
