//! Property tests for the `.cat` DSL: random programs round-trip through
//! the pretty-printer, and evaluation respects basic algebraic identities
//! regardless of how expressions are written.

use proptest::prelude::*;
use std::collections::BTreeMap;
use weakgpu_axiom::cat::{CatProgram, CheckKind, Expr, Stmt};
use weakgpu_axiom::relation::{EventSet, Relation};

const N: usize = 6;

fn arb_ident() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("po".to_owned()),
        Just("rf".to_owned()),
        Just("co".to_owned()),
        Just("po-loc".to_owned()),
        Just("membar.gl".to_owned()),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![arb_ident().prop_map(Expr::Id), Just(Expr::Zero)];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Union(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Inter(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Diff(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Seq(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Expr::Inverse(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Plus(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Star(Box::new(a))),
            inner.clone().prop_map(|a| Expr::Opt(Box::new(a))),
            (Just("WW".to_owned()), inner.clone()).prop_map(|(n, a)| Expr::App(n, Box::new(a))),
            (Just("RR".to_owned()), inner).prop_map(|(n, a)| Expr::App(n, Box::new(a))),
        ]
    })
}

fn arb_program() -> impl Strategy<Value = CatProgram> {
    prop::collection::vec((arb_expr(), 0..3usize), 1..5).prop_map(|items| {
        let mut src = String::new();
        for (i, (expr, kind)) in items.iter().enumerate() {
            let stmt = match kind {
                0 => Stmt::Let {
                    name: format!("d{i}"),
                    param: None,
                    body: expr.clone(),
                },
                1 => Stmt::Check {
                    kind: CheckKind::Acyclic,
                    expr: expr.clone(),
                    name: format!("c{i}"),
                },
                _ => Stmt::Check {
                    kind: CheckKind::Irreflexive,
                    expr: expr.clone(),
                    name: format!("c{i}"),
                },
            };
            src.push_str(&stmt.to_string());
            src.push('\n');
        }
        CatProgram::parse(&src).expect("printed statements parse")
    })
}

fn env() -> (BTreeMap<String, Relation>, EventSet, EventSet) {
    let mut base = BTreeMap::new();
    base.insert(
        "po".to_owned(),
        Relation::from_pairs(N, [(0, 1), (1, 2), (0, 2)]),
    );
    base.insert("rf".to_owned(), Relation::from_pairs(N, [(2, 3), (5, 4)]));
    base.insert("co".to_owned(), Relation::from_pairs(N, [(0, 5)]));
    base.insert("po-loc".to_owned(), Relation::from_pairs(N, [(0, 1)]));
    base.insert("membar.gl".to_owned(), Relation::from_pairs(N, [(3, 4)]));
    let reads = EventSet::from_iter_n(N, [1, 3, 4]);
    let writes = EventSet::from_iter_n(N, [0, 2, 5]);
    (base, reads, writes)
}

proptest! {
    // Parse/print/evaluate per case; 64 keeps the suite CI-friendly
    // (PROPTEST_CASES caps this further if set).
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn programs_roundtrip_through_display(prog in arb_program()) {
        let printed = prog.to_string();
        let back = CatProgram::parse(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{printed}")))?;
        prop_assert_eq!(prog.stmts(), back.stmts());
    }

    #[test]
    fn roundtripped_programs_evaluate_identically(prog in arb_program()) {
        let (base, reads, writes) = env();
        let printed = prog.to_string();
        let back = CatProgram::parse(&printed).unwrap();
        let a = prog.check(&base, &reads, &writes).unwrap();
        let b = back.check(&base, &reads, &writes).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn union_with_zero_is_identity(e in arb_expr()) {
        let (base, reads, writes) = env();
        let plain = format!("acyclic {e} as c");
        let zeroed = format!("acyclic ({e} | 0) as c");
        let a = CatProgram::parse(&plain).unwrap().check(&base, &reads, &writes).unwrap();
        let b = CatProgram::parse(&zeroed).unwrap().check(&base, &reads, &writes).unwrap();
        prop_assert_eq!(a[0].passed, b[0].passed);
    }

    #[test]
    fn double_inverse_preserves_checks(e in arb_expr()) {
        let (base, reads, writes) = env();
        let plain = format!("irreflexive {e} as c");
        let doubled = format!("irreflexive (({e})^-1)^-1 as c");
        let a = CatProgram::parse(&plain).unwrap().check(&base, &reads, &writes).unwrap();
        let b = CatProgram::parse(&doubled).unwrap().check(&base, &reads, &writes).unwrap();
        prop_assert_eq!(a[0].passed, b[0].passed);
    }
}
