//! Core facade for the `weakgpu` workspace: every subsystem re-exported
//! under a short module name, plus the high-level [`Session`] API.
//!
//! ```
//! use weakgpu_core::{Session, litmus::corpus, sim::Chip};
//!
//! let session = Session::new()
//!     .chip(Chip::GtxTitan)
//!     .iterations(5_000);
//! let report = session.run(&corpus::corr()).unwrap();
//! assert_eq!(report.histogram.total(), 5_000);
//!
//! // The paper's PTX model allows everything the chip exhibited.
//! let soundness = session.check_soundness(&corpus::corr()).unwrap();
//! assert!(soundness.is_sound());
//! ```

pub use weakgpu_axiom as axiom;
pub use weakgpu_diy as diy;
pub use weakgpu_front as front;
pub use weakgpu_harness as harness;
pub use weakgpu_litmus as litmus;
pub use weakgpu_models as models;
pub use weakgpu_optcheck as optcheck;
pub use weakgpu_sim as sim;

pub mod session;

pub use session::{Session, SessionError};
