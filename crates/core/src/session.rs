//! The [`Session`] API: one object holding chip, incantations, iteration
//! count and seed, against which tests are run, model-checked and
//! soundness-verified.

use std::fmt;

use weakgpu_axiom::enumerate::{model_outcomes, EnumConfig, EnumError, ModelOutcomes};
use weakgpu_axiom::model::Model;
use weakgpu_harness::campaign::{run_campaign, CampaignConfig, CellSpec};
use weakgpu_harness::runner::{run_test, HarnessError, RunConfig, TestReport};
use weakgpu_harness::soundness::{check_soundness, SoundnessReport};
use weakgpu_litmus::LitmusTest;
use weakgpu_models::ptx_model;
use weakgpu_sim::chip::{Chip, Incantations};

/// A configured testing session.
///
/// Defaults: GTX Titan, all incantations, 100k iterations (the paper's
/// setup for its figures), all cores.
#[derive(Clone, Debug)]
pub struct Session {
    chip: Chip,
    incantations: Incantations,
    iterations: usize,
    seed: u64,
    parallelism: Option<usize>,
    enum_config: EnumConfig,
}

impl Default for Session {
    fn default() -> Self {
        Session {
            chip: Chip::GtxTitan,
            incantations: Incantations::all_on(),
            iterations: 100_000,
            seed: 0x5eed,
            parallelism: None,
            enum_config: EnumConfig::default(),
        }
    }
}

/// Errors surfaced by [`Session`] methods.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SessionError {
    /// Running on the simulator failed.
    Harness(HarnessError),
    /// Enumerating candidate executions failed.
    Enumeration(EnumError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Harness(e) => write!(f, "{e}"),
            SessionError::Enumeration(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<HarnessError> for SessionError {
    fn from(e: HarnessError) -> Self {
        SessionError::Harness(e)
    }
}

impl From<EnumError> for SessionError {
    fn from(e: EnumError) -> Self {
        SessionError::Enumeration(e)
    }
}

impl Session {
    /// A session with the default configuration.
    pub fn new() -> Self {
        Session::default()
    }

    /// Selects the chip profile.
    pub fn chip(mut self, chip: Chip) -> Self {
        self.chip = chip;
        self
    }

    /// Selects the incantation combination.
    pub fn incantations(mut self, inc: Incantations) -> Self {
        self.incantations = inc;
        self
    }

    /// Sets the iteration count.
    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations = n;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins the worker-thread count (default: all available cores).
    /// Affects wall-clock time only — histograms are bit-identical for a
    /// fixed seed at any parallelism.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = Some(workers);
        self
    }

    /// The configured chip.
    pub fn chip_in_use(&self) -> Chip {
        self.chip
    }

    /// The harness configuration this session resolves to.
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            iterations: self.iterations,
            incantations: self.incantations,
            seed: self.seed,
            parallelism: self.parallelism,
        }
    }

    /// Runs `test` on the configured chip, histogramming outcomes.
    ///
    /// # Errors
    ///
    /// Propagates harness failures.
    pub fn run(&self, test: &LitmusTest) -> Result<TestReport, SessionError> {
        Ok(run_test(test, self.chip, &self.run_config())?)
    }

    /// Runs `test` on several chips (e.g. [`Chip::TABLED`]), producing one
    /// report per chip — a row of the paper's figures. A single-test
    /// campaign: cells share the worker pool, and results match per-chip
    /// [`Session::run`] calls exactly.
    ///
    /// # Errors
    ///
    /// Propagates harness failures.
    pub fn run_on_chips(
        &self,
        test: &LitmusTest,
        chips: &[Chip],
    ) -> Result<Vec<TestReport>, SessionError> {
        self.run_campaign(std::slice::from_ref(test), chips)
    }

    /// Runs the full `tests × chips` grid as one campaign over a shared
    /// worker pool, returning reports in test-major order (`tests[0]` on
    /// every chip, then `tests[1]`, …). Every cell uses this session's
    /// incantations, iteration count and seed, so each report is
    /// bit-identical to a standalone [`Session::run`] of that cell.
    ///
    /// # Errors
    ///
    /// Propagates harness failures.
    pub fn run_campaign(
        &self,
        tests: &[LitmusTest],
        chips: &[Chip],
    ) -> Result<Vec<TestReport>, SessionError> {
        let cfg = self.run_config();
        let cells: Vec<CellSpec> = tests
            .iter()
            .flat_map(|t| {
                chips
                    .iter()
                    .map(|&c| CellSpec::from_config(t.clone(), c, &cfg))
            })
            .collect();
        Ok(run_campaign(
            &cells,
            &CampaignConfig {
                parallelism: self.parallelism,
            },
        )?)
    }

    /// Enumerates `test`'s candidate executions under `model`.
    ///
    /// # Errors
    ///
    /// Propagates enumeration failures.
    pub fn model_check(
        &self,
        test: &LitmusTest,
        model: &dyn Model,
    ) -> Result<ModelOutcomes, SessionError> {
        Ok(model_outcomes(test, model, &self.enum_config)?)
    }

    /// Runs `test` and verifies every observation is allowed by the
    /// paper's PTX model.
    ///
    /// # Errors
    ///
    /// Propagates harness and enumeration failures.
    pub fn check_soundness(&self, test: &LitmusTest) -> Result<SoundnessReport, SessionError> {
        self.check_soundness_against(test, &ptx_model())
    }

    /// Like [`Session::check_soundness`], against an arbitrary model.
    ///
    /// # Errors
    ///
    /// Propagates harness and enumeration failures.
    pub fn check_soundness_against(
        &self,
        test: &LitmusTest,
        model: &dyn Model,
    ) -> Result<SoundnessReport, SessionError> {
        let report = self.run(test)?;
        Ok(check_soundness(
            test,
            &report.histogram,
            model,
            &self.enum_config,
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_litmus::{corpus, ThreadScope};
    use weakgpu_models::operational_baseline;

    #[test]
    fn defaults_and_builders() {
        let s = Session::new()
            .chip(Chip::TeslaC2075)
            .iterations(42)
            .seed(1)
            .parallelism(3)
            .incantations(Incantations::none());
        assert_eq!(s.chip_in_use(), Chip::TeslaC2075);
        let cfg = s.run_config();
        assert_eq!(cfg.iterations, 42);
        assert_eq!(cfg.seed, 1);
        assert_eq!(cfg.parallelism, Some(3));
    }

    #[test]
    fn campaign_grid_matches_standalone_runs() {
        let s = Session::new().iterations(1_500);
        let tests = [corpus::mp(ThreadScope::InterCta, None), corpus::corr()];
        let chips = [Chip::GtxTitan, Chip::Gtx280];
        let grid = s.run_campaign(&tests, &chips).unwrap();
        assert_eq!(grid.len(), 4);
        let mut i = 0;
        for test in &tests {
            for &chip in &chips {
                let solo = run_test(test, chip, &s.run_config()).unwrap();
                assert_eq!(grid[i].histogram, solo.histogram, "{} on {chip}", solo.test);
                i += 1;
            }
        }
    }

    #[test]
    fn run_and_model_check() {
        let s = Session::new().iterations(3_000);
        let test = corpus::mp(ThreadScope::InterCta, None);
        let report = s.run(&test).unwrap();
        assert_eq!(report.histogram.total(), 3_000);
        let outcomes = s.model_check(&test, &ptx_model()).unwrap();
        assert!(outcomes.condition_witnessed);
    }

    #[test]
    fn run_on_chips_produces_rows() {
        let s = Session::new().iterations(1_000);
        let rows = s
            .run_on_chips(&corpus::corr(), &[Chip::Gtx280, Chip::GtxTitan])
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].witnesses, 0, "GTX 280 stays strong");
    }

    #[test]
    fn soundness_against_both_models() {
        use weakgpu_litmus::FenceScope;
        let s = Session::new()
            .iterations(150_000)
            .incantations(Incantations::best_inter_cta());
        let test = corpus::lb(ThreadScope::InterCta, Some(FenceScope::Cta));
        let ptx = s.check_soundness(&test).unwrap();
        assert!(ptx.is_sound());
        let op = s
            .check_soundness_against(&test, &operational_baseline())
            .unwrap();
        assert!(!op.is_sound(), "Sec. 6 witness");
    }
}
