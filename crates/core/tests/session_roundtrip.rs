//! The `Session` path from the crate-level doc example, promoted to a real
//! integration test: configure a session, run a corpus test end-to-end on
//! the simulated chip, and check soundness of everything observed against
//! the paper's PTX model.

use weakgpu_core::harness::runner::RunConfig;
use weakgpu_core::litmus::corpus;
use weakgpu_core::sim::chip::Incantations;
use weakgpu_core::sim::Chip;
use weakgpu_core::Session;

fn mk_session() -> Session {
    Session::new().chip(Chip::GtxTitan).iterations(5_000)
}

#[test]
fn doc_example_run_and_soundness() {
    // Exactly the crate-level doc example, with its assertions.
    let session = mk_session();
    let report = session.run(&corpus::corr()).unwrap();
    assert_eq!(report.histogram.total(), 5_000);

    let soundness = session.check_soundness(&corpus::corr()).unwrap();
    assert!(soundness.is_sound());
}

#[test]
fn run_config_reflects_builder_settings() {
    let session = Session::new()
        .chip(Chip::TeslaC2075)
        .iterations(123)
        .seed(99)
        .incantations(Incantations::none());
    assert_eq!(session.chip_in_use(), Chip::TeslaC2075);
    let RunConfig {
        iterations, seed, ..
    } = session.run_config();
    assert_eq!(iterations, 123);
    assert_eq!(seed, 99);
}

#[test]
fn same_seed_same_histogram() {
    let test = corpus::corr();
    let a = mk_session().seed(7).run(&test).unwrap();
    let b = mk_session().seed(7).run(&test).unwrap();
    assert_eq!(a.histogram, b.histogram, "fixed-seed sessions must agree");
}

#[test]
fn soundness_holds_across_the_tabled_chips() {
    // Every chip the paper tabulates must stay inside the PTX model's
    // allowed outcomes for the coherence shape.
    let session = mk_session().iterations(2_000);
    for report in session
        .run_on_chips(&corpus::corr(), &[Chip::GtxTitan, Chip::Gtx280])
        .unwrap()
    {
        assert_eq!(report.histogram.total(), 2_000);
    }
    for chip in [Chip::GtxTitan, Chip::Gtx280] {
        let sound = mk_session()
            .iterations(2_000)
            .chip(chip)
            .check_soundness(&corpus::corr())
            .unwrap();
        assert!(
            sound.is_sound(),
            "{chip:?} produced model-forbidden outcomes"
        );
    }
}
