//! The simulated assembler: lowers PTX litmus threads to the SASS-like IR
//! at `-O0` or `-O3`, optionally injecting the documented vendor
//! miscompilations (Tab. 2), and embedding the xor specification.

use weakgpu_litmus::{Instr, LitmusTest, Operand};

use crate::sass::{AccessType, SassInstr, SassOp};
use crate::spec::SpecEntry;

/// Optimisation level of the simulated `ptxas`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OptLevel {
    /// `-O0`: every access survives, but address computations are not
    /// folded — adjacent PTX accesses end up separated by several SASS
    /// instructions (undesirable for testing, Sec. 4.4).
    O0,
    /// `-O3`: tight code, with dead-code elimination that removes
    /// xor-based false dependencies (Fig. 13a).
    #[default]
    O3,
}

/// Injectable miscompilations (paper Tab. 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompilerBug {
    /// CUDA 5.5 on Maxwell: volatile loads to the same address reordered
    /// (Sec. 4.4).
    ReorderVolatileLoads,
    /// AMD GCN 1.0: the fence between two loads is removed (Sec. 3.1.2).
    RemoveFenceBetweenLoads,
    /// AMD TeraScale 2: a load and a later CAS are reordered (Sec. 3.2.1).
    ReorderLoadCas,
    /// AMD: repeated loads from one location fused into a single load
    /// (Sec. 4.4).
    FuseDuplicateLoads,
}

/// Assembler configuration.
#[derive(Clone, Debug, Default)]
pub struct CompilerConfig {
    /// Optimisation level.
    pub opt_level: OptLevel,
    /// Active miscompilations.
    pub bugs: Vec<CompilerBug>,
    /// Embed the xor specification (on by default via [`CompilerConfig::o3`]).
    pub embed_spec: bool,
}

impl CompilerConfig {
    /// Plain `-O3` with the specification embedded — the paper's testing
    /// configuration.
    pub fn o3() -> Self {
        CompilerConfig {
            opt_level: OptLevel::O3,
            bugs: Vec::new(),
            embed_spec: true,
        }
    }

    /// Plain `-O0` with the specification embedded.
    pub fn o0() -> Self {
        CompilerConfig {
            opt_level: OptLevel::O0,
            bugs: Vec::new(),
            embed_spec: true,
        }
    }

    /// Adds a miscompilation.
    pub fn with_bug(mut self, bug: CompilerBug) -> Self {
        self.bugs.push(bug);
        self
    }
}

fn data_reg(instr: &Instr) -> String {
    match instr.written_reg() {
        Some(r) => r.as_str().to_owned(),
        None => match instr.unguarded() {
            Instr::St {
                src: Operand::Reg(r),
                ..
            } => r.as_str().to_owned(),
            _ => "rz".to_owned(),
        },
    }
}

fn loc_of(instr: &Instr) -> Option<weakgpu_litmus::Loc> {
    match instr.address() {
        Some(Operand::Sym(l)) => Some(l.clone()),
        _ => None,
    }
}

/// Lowers one thread.
pub fn compile_thread(thread: &[Instr], cfg: &CompilerConfig) -> Vec<SassInstr> {
    // Dead-code elimination of xor-based false dependencies at -O3:
    // `xor d,a,a` makes d = 0, so the downstream cvt/add chain is folded
    // away (Fig. 13a) — erasing the dependency.
    let mut dead_regs: Vec<String> = Vec::new();
    if cfg.opt_level == OptLevel::O3 {
        for instr in thread {
            match instr.unguarded() {
                Instr::Xor { dst, a, b } if a == b => {
                    dead_regs.push(dst.as_str().to_owned());
                }
                Instr::Cvt {
                    dst,
                    src: Operand::Reg(r),
                } if dead_regs.contains(&r.as_str().to_owned()) => {
                    dead_regs.push(dst.as_str().to_owned());
                }
                _ => {}
            }
        }
    }

    let mut out: Vec<SassInstr> = Vec::new();
    for (i, instr) in thread.iter().enumerate() {
        let inner = instr.unguarded();
        match inner {
            Instr::Ld {
                cache, volatile, ..
            } => {
                pad(&mut out, cfg);
                out.push(SassInstr {
                    op: SassOp::Access {
                        ty: AccessType::load(*cache, *volatile),
                        reg: data_reg(instr),
                        loc: loc_of(instr),
                    },
                    ptx_index: Some(i),
                });
            }
            Instr::St { volatile, .. } => {
                pad(&mut out, cfg);
                out.push(SassInstr {
                    op: SassOp::Access {
                        ty: AccessType::store(*volatile),
                        reg: data_reg(instr),
                        loc: loc_of(instr),
                    },
                    ptx_index: Some(i),
                });
            }
            Instr::Cas { .. } | Instr::Exch { .. } | Instr::Inc { .. } => {
                pad(&mut out, cfg);
                out.push(SassInstr {
                    op: SassOp::Access {
                        ty: AccessType::Atomic,
                        reg: data_reg(instr),
                        loc: loc_of(instr),
                    },
                    ptx_index: Some(i),
                });
            }
            Instr::Membar { scope } => out.push(SassInstr {
                op: SassOp::Membar(*scope),
                ptx_index: Some(i),
            }),
            Instr::Xor { dst, a, b } if cfg.opt_level == OptLevel::O3 && a == b => {
                // Folded away; mark the register chain dead (done above).
                let _ = dst;
            }
            Instr::Cvt {
                dst,
                src: Operand::Reg(r),
            } if cfg.opt_level == OptLevel::O3 && dead_regs.contains(&r.as_str().to_owned()) => {
                let _ = dst;
            }
            Instr::Add { a, b, .. }
                if cfg.opt_level == OptLevel::O3
                    && [a, b].iter().any(|o| match o {
                        Operand::Reg(r) => dead_regs.contains(&r.as_str().to_owned()),
                        _ => false,
                    }) => {}
            Instr::LabelDef(_) => {}
            other => out.push(SassInstr {
                op: SassOp::Alu {
                    mnemonic: mnemonic(other),
                },
                ptx_index: Some(i),
            }),
        }
    }

    apply_bugs(&mut out, cfg);

    if cfg.embed_spec {
        // The specification reflects the *intended* (PTX) access order —
        // embedded before optimisation in the real pipeline, so derived
        // from the source thread here.
        let mut pos = 0;
        for instr in thread {
            let inner = instr.unguarded();
            let ty = match inner {
                Instr::Ld {
                    cache, volatile, ..
                } => Some(AccessType::load(*cache, *volatile)),
                Instr::St { volatile, .. } => Some(AccessType::store(*volatile)),
                Instr::Cas { .. } | Instr::Exch { .. } | Instr::Inc { .. } => {
                    Some(AccessType::Atomic)
                }
                _ => None,
            };
            if let Some(ty) = ty {
                out.push(
                    SpecEntry {
                        reg: data_reg(instr),
                        ty,
                        position: pos,
                    }
                    .to_sass(),
                );
                pos += 1;
            }
        }
    }
    out
}

fn pad(out: &mut Vec<SassInstr>, cfg: &CompilerConfig) {
    if cfg.opt_level == OptLevel::O0 {
        // Unfolded address computation before every access.
        for mnemonic in ["MOV32I", "SHL", "IADD"] {
            out.push(SassInstr {
                op: SassOp::Alu {
                    mnemonic: mnemonic.to_owned(),
                },
                ptx_index: None,
            });
        }
    }
}

fn mnemonic(instr: &Instr) -> String {
    match instr {
        Instr::Mov { .. } => "MOV".to_owned(),
        Instr::Add { .. } => "IADD".to_owned(),
        Instr::And { .. } => "LOP.AND".to_owned(),
        Instr::Xor { .. } => "LOP.XOR".to_owned(),
        Instr::Cvt { .. } => "I2I".to_owned(),
        Instr::SetpEq { .. } | Instr::SetpNe { .. } => "ISETP".to_owned(),
        Instr::Bra { .. } => "BRA".to_owned(),
        other => format!("{other:?}")
            .split(' ')
            .next()
            .unwrap_or("NOP")
            .to_owned(),
    }
}

fn apply_bugs(out: &mut Vec<SassInstr>, cfg: &CompilerConfig) {
    for bug in &cfg.bugs {
        match bug {
            CompilerBug::ReorderVolatileLoads => {
                // Swap adjacent volatile loads of the same location.
                for i in 0..out.len().saturating_sub(1) {
                    let same = matches!(
                        (&out[i].op, &out[i + 1].op),
                        (
                            SassOp::Access { ty: a, loc: la, .. },
                            SassOp::Access { ty: b, loc: lb, .. },
                        ) if *a == AccessType::LoadVolatile
                            && *b == AccessType::LoadVolatile
                            && la == lb
                    );
                    if same {
                        out.swap(i, i + 1);
                    }
                }
            }
            CompilerBug::RemoveFenceBetweenLoads => {
                // Remove a MEMBAR whose neighbouring accesses are loads.
                let mut i = 0;
                while i < out.len() {
                    if matches!(out[i].op, SassOp::Membar(_)) {
                        let prev_load = prev_access(out, i).is_some_and(AccessType::is_load);
                        let next_load = next_access(out, i).is_some_and(AccessType::is_load);
                        if prev_load && next_load {
                            out.remove(i);
                            continue;
                        }
                    }
                    i += 1;
                }
            }
            CompilerBug::ReorderLoadCas => {
                // Move an atomic before a preceding (different-location)
                // load.
                for i in 0..out.len().saturating_sub(1) {
                    let reorder = matches!(
                        (&out[i].op, &out[i + 1].op),
                        (
                            SassOp::Access { ty: a, loc: la, .. },
                            SassOp::Access { ty: b, loc: lb, .. },
                        ) if a.is_load() && *b == AccessType::Atomic && la != lb
                    );
                    if reorder {
                        out.swap(i, i + 1);
                    }
                }
            }
            CompilerBug::FuseDuplicateLoads => {
                // Drop a load whose location matches the previous load.
                let mut i = 1;
                while i < out.len() {
                    let fuse = matches!(
                        (&out[i - 1].op, &out[i].op),
                        (
                            SassOp::Access { ty: a, loc: la @ Some(_), .. },
                            SassOp::Access { ty: b, loc: lb, .. },
                        ) if a.is_load() && b.is_load() && la == lb
                    );
                    if fuse {
                        out.remove(i);
                        continue;
                    }
                    i += 1;
                }
            }
        }
    }
}

fn prev_access(out: &[SassInstr], i: usize) -> Option<AccessType> {
    out[..i].iter().rev().find_map(|x| match &x.op {
        SassOp::Access { ty, .. } => Some(*ty),
        _ => None,
    })
}

fn next_access(out: &[SassInstr], i: usize) -> Option<AccessType> {
    out[i + 1..].iter().find_map(|x| match &x.op {
        SassOp::Access { ty, .. } => Some(*ty),
        _ => None,
    })
}

/// Lowers every thread of a test.
pub fn compile_test(test: &LitmusTest, cfg: &CompilerConfig) -> Vec<Vec<SassInstr>> {
    test.threads()
        .iter()
        .map(|t| compile_thread(t, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_litmus::corpus;

    #[test]
    fn o3_is_tight_o0_is_padded() {
        let test = corpus::corr();
        let o3 = compile_thread(&test.threads()[1], &CompilerConfig::o3());
        let o0 = compile_thread(&test.threads()[1], &CompilerConfig::o0());
        assert!(
            o0.len() > o3.len(),
            "O0 must pad ({} vs {})",
            o0.len(),
            o3.len()
        );
        // Both keep the two loads.
        let loads = |s: &[SassInstr]| {
            s.iter()
                .filter(|i| matches!(&i.op, SassOp::Access { ty, .. } if ty.is_load()))
                .count()
        };
        assert_eq!(loads(&o3), 2);
        assert_eq!(loads(&o0), 2);
    }

    #[test]
    fn spec_embedded_per_access() {
        let test = corpus::cas_sl(true);
        let sass = compile_thread(&test.threads()[0], &CompilerConfig::o3());
        let spec = crate::spec::extract(&sass);
        // st + exch = 2 accesses.
        assert_eq!(spec.len(), 2);
        assert_eq!(spec[0].ty, AccessType::StoreCg);
        assert_eq!(spec[1].ty, AccessType::Atomic);
    }

    #[test]
    fn volatile_load_reordering_bug() {
        // Two volatile loads from x (the coRR shape that exposed CUDA 5.5).
        use weakgpu_litmus::build::*;
        let thread = vec![ld_volatile("r1", "x"), ld_volatile("r2", "x")];
        let clean = compile_thread(&thread, &CompilerConfig::o3());
        let buggy = compile_thread(
            &thread,
            &CompilerConfig::o3().with_bug(CompilerBug::ReorderVolatileLoads),
        );
        let regs = |s: &[SassInstr]| -> Vec<String> {
            s.iter()
                .filter_map(|i| match &i.op {
                    SassOp::Access { reg, .. } => Some(reg.clone()),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(regs(&clean), ["r1", "r2"]);
        assert_eq!(regs(&buggy), ["r2", "r1"]);
    }

    #[test]
    fn gcn_fence_removal_bug() {
        use weakgpu_litmus::build::*;
        let thread = vec![ld("r1", "y"), membar_gl(), ld("r2", "x")];
        let buggy = compile_thread(
            &thread,
            &CompilerConfig::o3().with_bug(CompilerBug::RemoveFenceBetweenLoads),
        );
        assert!(
            !buggy.iter().any(|i| matches!(i.op, SassOp::Membar(_))),
            "fence between loads must be removed"
        );
        // But a fence between stores survives.
        let stores = vec![st("x", 1), membar_gl(), st("y", 1)];
        let kept = compile_thread(
            &stores,
            &CompilerConfig::o3().with_bug(CompilerBug::RemoveFenceBetweenLoads),
        );
        assert!(kept.iter().any(|i| matches!(i.op, SassOp::Membar(_))));
    }

    #[test]
    fn terascale_load_cas_reordering_bug() {
        let test = corpus::dlb_lb(false);
        // T1: ld t; cas h — the TeraScale 2 compiler reorders them.
        let buggy = compile_thread(
            &test.threads()[1],
            &CompilerConfig::o3().with_bug(CompilerBug::ReorderLoadCas),
        );
        let tys: Vec<AccessType> = buggy
            .iter()
            .filter_map(|i| match &i.op {
                SassOp::Access { ty, .. } => Some(*ty),
                _ => None,
            })
            .collect();
        assert_eq!(tys, [AccessType::Atomic, AccessType::LoadCg]);
    }

    #[test]
    fn duplicate_load_fusion_bug() {
        let test = corpus::corr();
        let buggy = compile_thread(
            &test.threads()[1],
            &CompilerConfig::o3().with_bug(CompilerBug::FuseDuplicateLoads),
        );
        let loads = buggy
            .iter()
            .filter(|i| matches!(&i.op, SassOp::Access { ty, .. } if ty.is_load()))
            .count();
        assert_eq!(loads, 1, "second load from x must be fused");
    }
}
