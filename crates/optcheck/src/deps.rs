//! Manufactured dependencies (paper Sec. 4.5, Fig. 13).
//!
//! False address dependencies keep the hardware honest without changing
//! values. The xor-based scheme (`xor r2,r1,r1` — always 0) is recognised
//! and removed by `ptxas -O3`, silently erasing the dependency; the
//! and-high-bit scheme (`and r2,r1,0x80000000` — also always 0, but only
//! provably so with inter-thread analysis) survives.

use weakgpu_litmus::build::*;
use weakgpu_litmus::Instr;

use crate::lower::{compile_thread, CompilerConfig};
use crate::sass::SassOp;

/// The two dependency-manufacturing schemes of Fig. 13.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DepScheme {
    /// Fig. 13a: `xor r2, r1, r1` — folded to 0 by the optimiser.
    Xor,
    /// Fig. 13b: `and r2, r1, 0x80000000` — survives `-O3`.
    AndHighBit,
}

/// Builds the Fig. 13 load-load address-dependency sequence:
/// load `r1` from `[r0]`, manufacture a dependency into address register
/// `r4`, load `r5` from `[r4]`.
///
/// The caller must initialise `r0` and `r4` to pointers.
pub fn load_load_dep(scheme: DepScheme) -> Vec<Instr> {
    let chain = match scheme {
        DepScheme::Xor => xor("r2", reg("r1"), reg("r1")),
        DepScheme::AndHighBit => and("r2", reg("r1"), imm(0x8000_0000)),
    };
    vec![
        ld("r1", reg("r0")),
        chain,
        cvt("r3", reg("r2")),
        add("r4", reg("r4"), reg("r3")),
        ld("r5", reg("r4")),
    ]
}

/// Does the compiled form of `thread` still carry an instruction chain
/// between its two loads (i.e. did the dependency survive)?
pub fn dependency_survives(thread: &[Instr], cfg: &CompilerConfig) -> bool {
    let mut cfg = cfg.clone();
    cfg.embed_spec = false;
    let sass = compile_thread(thread, &cfg);
    // Between the two access instructions, is there any ALU instruction?
    let access_positions: Vec<usize> = sass
        .iter()
        .enumerate()
        .filter_map(|(i, x)| matches!(x.op, SassOp::Access { .. }).then_some(i))
        .collect();
    match access_positions.as_slice() {
        [a, b] => sass[*a + 1..*b]
            .iter()
            .any(|x| matches!(x.op, SassOp::Alu { .. })),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::OptLevel;

    #[test]
    fn xor_scheme_erased_by_o3() {
        let thread = load_load_dep(DepScheme::Xor);
        assert!(
            !dependency_survives(&thread, &CompilerConfig::o3()),
            "Fig. 13a: ptxas -O3 removes the xor chain"
        );
        // At -O0 the chain survives (padded code keeps everything).
        assert!(dependency_survives(&thread, &CompilerConfig::o0()));
    }

    #[test]
    fn and_scheme_survives_o3() {
        let thread = load_load_dep(DepScheme::AndHighBit);
        assert!(
            dependency_survives(&thread, &CompilerConfig::o3()),
            "Fig. 13b: the and-high-bit chain survives -O3"
        );
    }

    #[test]
    fn both_schemes_compute_identity() {
        // Semantically the chains leave r4 unchanged: verified statically —
        // xor r1,r1 = 0 and and r1,0x80000000 = 0 for small positive
        // values; 0 added to the pointer register is the identity.
        let t = load_load_dep(DepScheme::AndHighBit);
        assert_eq!(t.len(), 5);
        assert!(matches!(t[1], Instr::And { .. }));
        let t = load_load_dep(DepScheme::Xor);
        assert!(matches!(t[1], Instr::Xor { .. }));
    }

    #[test]
    fn opt_level_default_is_o3() {
        assert_eq!(OptLevel::default(), OptLevel::O3);
    }
}
