//! The xor-instruction specification (paper Sec. 4.4).
//!
//! One `XOR reg, reg, #constant` per memory access is appended to each
//! thread. The constant packs a magic tag (distinguishing specification
//! instructions from genuine xors), the access's type code and its
//! position in the intended access order.

use crate::sass::{AccessType, SassInstr, SassOp};

/// The magic tag in the high bits of every specification constant.
pub const SPEC_MAGIC: u32 = 0x07f3_0000;

const TYPE_SHIFT: u32 = 8;
const POS_MASK: u32 = 0xff;
const TYPE_MASK: u32 = 0xff;

/// One entry of the intended access sequence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpecEntry {
    /// Register the access uses.
    pub reg: String,
    /// Access type.
    pub ty: AccessType,
    /// Position in the intended order (0-based).
    pub position: u32,
}

impl SpecEntry {
    /// Encodes the entry's constant.
    pub fn constant(&self) -> u32 {
        SPEC_MAGIC | (self.ty.code() << TYPE_SHIFT) | (self.position & POS_MASK)
    }

    /// Decodes a constant, if it carries the magic tag.
    pub fn decode(reg: &str, constant: u32) -> Option<SpecEntry> {
        if constant & 0xffff_0000 != SPEC_MAGIC {
            return None;
        }
        Some(SpecEntry {
            reg: reg.to_owned(),
            ty: AccessType::from_code((constant >> TYPE_SHIFT) & TYPE_MASK)?,
            position: constant & POS_MASK,
        })
    }

    /// Renders the entry as a SASS specification instruction.
    pub fn to_sass(&self) -> SassInstr {
        SassInstr {
            op: SassOp::Spec {
                reg: self.reg.clone(),
                constant: self.constant(),
            },
            ptx_index: None,
        }
    }
}

/// Extracts the specification entries embedded in a SASS listing, sorted
/// by position.
pub fn extract(sass: &[SassInstr]) -> Vec<SpecEntry> {
    let mut entries: Vec<SpecEntry> = sass
        .iter()
        .filter_map(|i| match &i.op {
            SassOp::Spec { reg, constant } => SpecEntry::decode(reg, *constant),
            _ => None,
        })
        .collect();
    entries.sort_by_key(|e| e.position);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_roundtrip() {
        let e = SpecEntry {
            reg: "r2".into(),
            ty: AccessType::LoadCa,
            position: 3,
        };
        let c = e.constant();
        assert_eq!(c & 0xffff_0000, SPEC_MAGIC);
        assert_eq!(SpecEntry::decode("r2", c), Some(e));
    }

    #[test]
    fn non_magic_constants_rejected() {
        assert_eq!(SpecEntry::decode("r1", 0x1234_5678), None);
        // Genuine xor with small constant.
        assert_eq!(SpecEntry::decode("r1", 0x0000_0001), None);
    }

    #[test]
    fn extract_sorts_by_position() {
        let sass = vec![
            SpecEntry {
                reg: "r9".into(),
                ty: AccessType::StoreCg,
                position: 1,
            }
            .to_sass(),
            SpecEntry {
                reg: "r1".into(),
                ty: AccessType::LoadCg,
                position: 0,
            }
            .to_sass(),
        ];
        let entries = extract(&sass);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].position, 0);
        assert_eq!(entries[0].reg, "r1");
    }
}
