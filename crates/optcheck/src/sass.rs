//! A SASS-like target IR — the output of the simulated assembler.
//!
//! Only the structure the checker cares about is modelled: the kind of
//! each instruction, which register a memory access uses, its location,
//! and the cross-reference to the originating PTX instruction.

use std::fmt;

use weakgpu_litmus::{CacheOp, FenceScope, Loc};

/// Type codes used both by SASS classification and the embedded
/// specification (paper Sec. 4.4: "which register it uses, what type of
/// instruction it is (e.g. 00 for a load with cache operator .cg), and its
/// position").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessType {
    /// `ld.cg` → `LDG.CG`.
    LoadCg,
    /// `ld.ca` → `LDG.CA`.
    LoadCa,
    /// `ld.volatile` → `LDG.CV`.
    LoadVolatile,
    /// `st.cg` → `STG.CG`.
    StoreCg,
    /// `st.volatile` → `STG.CV`.
    StoreVolatile,
    /// Any `atom.*` → `ATOM`.
    Atomic,
}

impl AccessType {
    /// The numeric code embedded in specification constants.
    pub fn code(self) -> u32 {
        match self {
            AccessType::LoadCg => 0x00,
            AccessType::LoadCa => 0x01,
            AccessType::LoadVolatile => 0x02,
            AccessType::StoreCg => 0x10,
            AccessType::StoreVolatile => 0x12,
            AccessType::Atomic => 0x20,
        }
    }

    /// Decodes a specification type code.
    pub fn from_code(code: u32) -> Option<AccessType> {
        Some(match code {
            0x00 => AccessType::LoadCg,
            0x01 => AccessType::LoadCa,
            0x02 => AccessType::LoadVolatile,
            0x10 => AccessType::StoreCg,
            0x12 => AccessType::StoreVolatile,
            0x20 => AccessType::Atomic,
            _ => return None,
        })
    }

    /// Classifies a load from its markers.
    pub fn load(cache: CacheOp, volatile: bool) -> AccessType {
        if volatile {
            AccessType::LoadVolatile
        } else if cache == CacheOp::Ca {
            AccessType::LoadCa
        } else {
            AccessType::LoadCg
        }
    }

    /// Classifies a store from its markers.
    pub fn store(volatile: bool) -> AccessType {
        if volatile {
            AccessType::StoreVolatile
        } else {
            AccessType::StoreCg
        }
    }

    /// `true` for loads.
    pub fn is_load(self) -> bool {
        matches!(
            self,
            AccessType::LoadCg | AccessType::LoadCa | AccessType::LoadVolatile
        )
    }
}

/// One SASS instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SassOp {
    /// A memory access.
    Access {
        /// Access type.
        ty: AccessType,
        /// The data register (destination of loads, source of stores).
        reg: String,
        /// Accessed location, when statically known.
        loc: Option<Loc>,
    },
    /// `MEMBAR`.
    Membar(FenceScope),
    /// Any ALU/control instruction (details irrelevant to the checker).
    Alu {
        /// Mnemonic, for disassembly output.
        mnemonic: String,
    },
    /// An embedded specification marker:
    /// `XOR r, r, #constant` (paper Sec. 4.4).
    Spec {
        /// The access's register.
        reg: String,
        /// The encoded constant.
        constant: u32,
    },
}

/// A SASS instruction with provenance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SassInstr {
    /// The operation.
    pub op: SassOp,
    /// Index of the originating PTX instruction, when applicable.
    pub ptx_index: Option<usize>,
}

impl fmt::Display for SassInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.op {
            SassOp::Access { ty, reg, loc } => {
                let mn = match ty {
                    AccessType::LoadCg => "LDG.E.CG",
                    AccessType::LoadCa => "LDG.E.CA",
                    AccessType::LoadVolatile => "LDG.E.CV",
                    AccessType::StoreCg => "STG.E.CG",
                    AccessType::StoreVolatile => "STG.E.CV",
                    AccessType::Atomic => "ATOM.E",
                };
                match loc {
                    Some(l) => write!(f, "{mn} {reg}, [{l}]"),
                    None => write!(f, "{mn} {reg}"),
                }
            }
            SassOp::Membar(s) => write!(f, "MEMBAR{}", s.suffix().to_uppercase()),
            SassOp::Alu { mnemonic } => write!(f, "{mnemonic}"),
            SassOp::Spec { reg, constant } => write!(f, "XOR {reg}, {reg}, 0x{constant:08x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for ty in [
            AccessType::LoadCg,
            AccessType::LoadCa,
            AccessType::LoadVolatile,
            AccessType::StoreCg,
            AccessType::StoreVolatile,
            AccessType::Atomic,
        ] {
            assert_eq!(AccessType::from_code(ty.code()), Some(ty));
        }
        assert_eq!(AccessType::from_code(0xff), None);
    }

    #[test]
    fn classification() {
        assert_eq!(AccessType::load(CacheOp::Cg, false), AccessType::LoadCg);
        assert_eq!(AccessType::load(CacheOp::Ca, false), AccessType::LoadCa);
        assert_eq!(
            AccessType::load(CacheOp::Cg, true),
            AccessType::LoadVolatile
        );
        assert_eq!(AccessType::store(false), AccessType::StoreCg);
        assert!(AccessType::LoadCa.is_load());
        assert!(!AccessType::Atomic.is_load());
    }

    #[test]
    fn display_forms() {
        let i = SassInstr {
            op: SassOp::Access {
                ty: AccessType::LoadCg,
                reg: "r1".into(),
                loc: Some(Loc::new("x")),
            },
            ptx_index: Some(0),
        };
        assert_eq!(i.to_string(), "LDG.E.CG r1, [x]");
        let s = SassInstr {
            op: SassOp::Spec {
                reg: "r1".into(),
                constant: 0x07f3_0001,
            },
            ptx_index: None,
        };
        assert!(s.to_string().starts_with("XOR r1, r1, 0x07f30001"));
    }
}
