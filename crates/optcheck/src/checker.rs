//! The static consistency check of Sec. 4.4: compare the SASS access
//! sequence against the embedded specification, flagging removals,
//! duplications, reorderings and type changes.

use std::fmt;

use weakgpu_litmus::LitmusTest;

use crate::lower::{compile_test, CompilerConfig};
use crate::sass::{AccessType, SassInstr, SassOp};
use crate::spec;

/// One detected inconsistency.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OptIssue {
    /// An access in the specification is missing from the code.
    Removed {
        /// Register of the missing access.
        reg: String,
        /// Expected type.
        ty: AccessType,
    },
    /// Two accesses appear in a different order than specified.
    Reordered {
        /// Register of the earlier-specified access.
        first: String,
        /// Register of the later-specified access.
        second: String,
    },
    /// An access changed type (e.g. a volatile load demoted).
    TypeChanged {
        /// Register of the access.
        reg: String,
        /// Specified type.
        expected: AccessType,
        /// Type found in the code.
        found: AccessType,
    },
    /// More accesses than specified (duplication).
    Extra {
        /// Number of unspecified accesses.
        count: usize,
    },
    /// No specification was embedded.
    NoSpec,
}

impl fmt::Display for OptIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptIssue::Removed { reg, ty } => {
                write!(f, "access {reg} ({ty:?}) removed by the compiler")
            }
            OptIssue::Reordered { first, second } => {
                write!(f, "accesses {first} and {second} reordered")
            }
            OptIssue::TypeChanged {
                reg,
                expected,
                found,
            } => write!(f, "access {reg} changed type: {expected:?} → {found:?}"),
            OptIssue::Extra { count } => write!(f, "{count} unspecified extra accesses"),
            OptIssue::NoSpec => write!(f, "no specification embedded"),
        }
    }
}

/// The verdict for one thread (or one whole test).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckReport {
    /// `true` when the code matches the specification.
    pub consistent: bool,
    /// The detected issues.
    pub issues: Vec<OptIssue>,
}

impl CheckReport {
    fn from_issues(issues: Vec<OptIssue>) -> Self {
        CheckReport {
            consistent: issues.is_empty(),
            issues,
        }
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: CheckReport) {
        self.consistent &= other.consistent;
        self.issues.extend(other.issues);
    }
}

/// Checks one thread's SASS against its embedded specification.
pub fn check_thread(sass: &[SassInstr]) -> CheckReport {
    let spec = spec::extract(sass);
    if spec.is_empty() {
        return CheckReport::from_issues(vec![OptIssue::NoSpec]);
    }
    let actual: Vec<(&String, AccessType)> = sass
        .iter()
        .filter_map(|i| match &i.op {
            SassOp::Access { reg, ty, .. } => Some((reg, *ty)),
            _ => None,
        })
        .collect();

    let mut issues = Vec::new();

    // Each specified access must appear exactly once. Generated tests use
    // a distinct register per access (Sec. 4.4); hand-written tests may
    // reuse a register (e.g. dlb-mp's `r2` feeds a load and a store), so
    // match greedily in position order, preferring register *and* type.
    let mut used = vec![false; actual.len()];
    let mut actual_index: Vec<Option<usize>> = Vec::with_capacity(spec.len());
    for entry in &spec {
        let exact = (0..actual.len())
            .find(|&i| !used[i] && *actual[i].0 == entry.reg && actual[i].1 == entry.ty);
        let found =
            exact.or_else(|| (0..actual.len()).find(|&i| !used[i] && *actual[i].0 == entry.reg));
        match found {
            None => {
                issues.push(OptIssue::Removed {
                    reg: entry.reg.clone(),
                    ty: entry.ty,
                });
                actual_index.push(None);
            }
            Some(i) => {
                used[i] = true;
                if actual[i].1 != entry.ty {
                    issues.push(OptIssue::TypeChanged {
                        reg: entry.reg.clone(),
                        expected: entry.ty,
                        found: actual[i].1,
                    });
                }
                actual_index.push(Some(i));
            }
        }
    }

    // Relative order must be preserved.
    for a in 0..spec.len() {
        for b in (a + 1)..spec.len() {
            if let (Some(ia), Some(ib)) = (actual_index[a], actual_index[b]) {
                if ia > ib {
                    issues.push(OptIssue::Reordered {
                        first: spec[a].reg.clone(),
                        second: spec[b].reg.clone(),
                    });
                }
            }
        }
    }

    // Count extras (accesses not matched by any spec entry).
    let matched: Vec<usize> = actual_index.iter().flatten().copied().collect();
    let extra = actual.len().saturating_sub(matched.len());
    if extra > 0 {
        issues.push(OptIssue::Extra { count: extra });
    }

    CheckReport::from_issues(issues)
}

/// Compiles and checks a whole test under the given configuration.
pub fn check_test(test: &LitmusTest, cfg: &CompilerConfig) -> CheckReport {
    let mut cfg = cfg.clone();
    cfg.embed_spec = true;
    let mut report = CheckReport::from_issues(Vec::new());
    for sass in compile_test(test, &cfg) {
        report.merge(check_thread(&sass));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{compile_thread, CompilerBug, CompilerConfig};
    use weakgpu_litmus::{build::*, corpus};

    #[test]
    fn clean_compilation_is_consistent() {
        for test in corpus::all() {
            let report = check_test(&test, &CompilerConfig::o3());
            assert!(report.consistent, "{}: {:?}", test.name(), report.issues);
        }
    }

    #[test]
    fn o0_is_also_consistent() {
        let report = check_test(&corpus::corr(), &CompilerConfig::o0());
        assert!(report.consistent);
    }

    #[test]
    fn detects_volatile_load_reordering() {
        let thread = vec![ld_volatile("r1", "x"), ld_volatile("r2", "x")];
        let sass = compile_thread(
            &thread,
            &CompilerConfig::o3().with_bug(CompilerBug::ReorderVolatileLoads),
        );
        let report = check_thread(&sass);
        assert!(!report.consistent);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, OptIssue::Reordered { .. })));
    }

    #[test]
    fn detects_fused_loads_as_removal() {
        let report = check_test(
            &corpus::corr(),
            &CompilerConfig::o3().with_bug(CompilerBug::FuseDuplicateLoads),
        );
        assert!(!report.consistent);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, OptIssue::Removed { .. })));
    }

    #[test]
    fn detects_load_cas_reordering() {
        let report = check_test(
            &corpus::dlb_lb(false),
            &CompilerConfig::o3().with_bug(CompilerBug::ReorderLoadCas),
        );
        assert!(!report.consistent);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, OptIssue::Reordered { .. })));
    }

    #[test]
    fn fence_removal_is_invisible_to_the_access_check() {
        // Fence removal does not touch the access sequence; the checker
        // (faithful to the paper) only polices accesses — the AMD fence
        // issue was found by inspecting the ISA (Sec. 3.1.2), modelled by
        // `amd::amd_compile`'s report instead.
        let report = check_test(
            &corpus::mp(
                weakgpu_litmus::ThreadScope::InterCta,
                Some(weakgpu_litmus::FenceScope::Gl),
            ),
            &CompilerConfig::o3().with_bug(CompilerBug::RemoveFenceBetweenLoads),
        );
        assert!(report.consistent);
    }

    #[test]
    fn missing_spec_flagged() {
        let thread = vec![st("x", 1)];
        let mut cfg = CompilerConfig::o3();
        cfg.embed_spec = false;
        let sass = compile_thread(&thread, &cfg);
        let report = check_thread(&sass);
        assert!(!report.consistent);
        assert_eq!(report.issues, vec![OptIssue::NoSpec]);
    }
}
