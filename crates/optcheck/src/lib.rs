//! `optcheck` — detecting unwanted compiler optimisations in compiled
//! litmus tests (paper Secs. 4.4 and 4.5).
//!
//! The paper compiles PTX to SASS with `ptxas`, disassembles with
//! `cuobjdump`, and statically checks that the assembler did not reorder
//! or remove the test's memory accesses. The trick: a *specification* of
//! the intended access sequence is embedded into the code itself as `xor`
//! instructions whose immediate operands encode each access's register,
//! instruction type and position.
//!
//! Here the whole pipeline is reproduced against a simulated assembler:
//!
//! * [`sass`] — a SASS-like target IR;
//! * [`lower`] — the assembler, with `-O0`/`-O3` behaviours and the
//!   *injectable* miscompilations of Tab. 2 (CUDA 5.5's volatile-load
//!   reordering, GCN's fence removal between loads, TeraScale 2's
//!   load/CAS reordering, duplicate-load fusion);
//! * [`spec`] — the xor-instruction specification;
//! * [`checker`] — the static consistency check;
//! * [`deps`] — manufactured dependencies (Fig. 13): the xor-based scheme
//!   that `-O3` destroys and the and-high-bit scheme that survives;
//! * [`amd`] — source-level transforms modelling the AMD OpenCL compiler,
//!   producing the transformed tests the AMD rows of Figs. 3 and 8 ran.
//!
//! ```
//! use weakgpu_optcheck::{lower::{compile_thread, CompilerConfig}, checker::check_thread};
//! use weakgpu_litmus::corpus;
//!
//! let test = corpus::corr();
//! let cfg = CompilerConfig::o3();
//! let sass = compile_thread(&test.threads()[1], &cfg);
//! let report = check_thread(&sass);
//! assert!(report.consistent, "{:?}", report.issues);
//! ```

pub mod amd;
pub mod checker;
pub mod deps;
pub mod lower;
pub mod sass;
pub mod spec;

pub use amd::{amd_compile, AmdCompileReport, AmdTarget};
pub use checker::{check_test, check_thread, CheckReport, OptIssue};
pub use lower::{compile_test, compile_thread, CompilerBug, CompilerConfig, OptLevel};
pub use sass::{SassInstr, SassOp};
