//! Source-level transforms modelling the AMD OpenCL compiler's observed
//! behaviour (paper Secs. 2.3, 3.1.2, 3.2.1 and 4.4).
//!
//! On AMD, the paper could not write ISA directly — tests pass through
//! the vendor OpenCL compiler, which was caught (a) removing fences
//! between loads on GCN 1.0, (b) reordering a load and a CAS on
//! TeraScale 2, and (c) fusing repeated loads from the same location.
//! [`amd_compile`] applies the target's transforms to a litmus test and
//! reports what it did — driving the `n/a` entries and compiler rows of
//! the paper's tables.

use std::fmt;

use weakgpu_litmus::{Instr, LitmusTest};

/// An AMD compilation target (Tab. 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AmdTarget {
    /// Radeon HD 6570 — Evergreen ISA.
    TeraScale2,
    /// Radeon HD 7970 — Southern Islands ISA.
    Gcn10,
}

impl fmt::Display for AmdTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmdTarget::TeraScale2 => write!(f, "TeraScale 2 (Evergreen)"),
            AmdTarget::Gcn10 => write!(f, "GCN 1.0 (Southern Islands)"),
        }
    }
}

/// What the compiler did to the test.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AmdCompileReport {
    /// Fences removed between load pairs (GCN 1.0).
    pub fences_removed: usize,
    /// Load/CAS pairs reordered (TeraScale 2) — invalidates the test.
    pub load_cas_reordered: usize,
    /// Duplicate loads fused (suppressed by the online-material
    /// workaround, which we always apply, like the paper).
    pub loads_fused: usize,
}

impl AmdCompileReport {
    /// `true` when the compiled test still measures what the source
    /// intended (the paper writes `n/a` otherwise, Fig. 8).
    pub fn test_is_meaningful(&self) -> bool {
        self.load_cas_reordered == 0
    }
}

/// Compiles `test` for an AMD target: applies the documented compiler
/// transforms and reports them. The returned test is what actually runs
/// on the chip.
pub fn amd_compile(test: &LitmusTest, target: AmdTarget) -> (LitmusTest, AmdCompileReport) {
    let mut report = AmdCompileReport::default();
    let mut threads: Vec<Vec<Instr>> = test.threads().to_vec();

    match target {
        AmdTarget::Gcn10 => {
            for thread in &mut threads {
                let mut i = 0;
                while i < thread.len() {
                    if thread[i].is_fence() {
                        let prev_is_load = thread[..i]
                            .iter()
                            .rev()
                            .find(|x| x.is_memory_access())
                            .is_some_and(|x| matches!(x.unguarded(), Instr::Ld { .. }));
                        let next_is_load = thread[i + 1..]
                            .iter()
                            .find(|x| x.is_memory_access())
                            .is_some_and(|x| matches!(x.unguarded(), Instr::Ld { .. }));
                        if prev_is_load && next_is_load {
                            thread.remove(i);
                            report.fences_removed += 1;
                            continue;
                        }
                    }
                    i += 1;
                }
            }
        }
        AmdTarget::TeraScale2 => {
            for thread in &mut threads {
                // Reorder an adjacent (load, CAS) pair: the Sec. 3.2.1
                // miscompilation.
                for i in 0..thread.len().saturating_sub(1) {
                    let is_pair = matches!(thread[i].unguarded(), Instr::Ld { .. })
                        && matches!(thread[i + 1].unguarded(), Instr::Cas { .. });
                    if is_pair {
                        thread.swap(i, i + 1);
                        report.load_cas_reordered += 1;
                    }
                }
            }
        }
    }

    // Rebuild the test with the transformed threads.
    let mut builder =
        LitmusTest::builder(format!("{}@{target}", test.name())).doc(test.doc().to_owned());
    for (loc, mi) in test.memory().iter() {
        builder = match mi.region {
            weakgpu_litmus::Region::Global => builder.global(loc.clone(), mi.init),
            weakgpu_litmus::Region::Shared => builder.shared(loc.clone(), mi.init),
        };
    }
    for thread in threads {
        builder = builder.thread(thread);
    }
    for (tid, reg, value) in test.reg_init() {
        builder = builder.reg_init(tid, reg.clone(), value.clone());
    }
    builder = builder.scope_tree(test.scope_tree().clone());
    builder = builder.cond(test.cond().clone());
    let compiled = builder.build().expect("transform preserves validity");
    (compiled, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_litmus::{corpus, FenceScope, ThreadScope};

    #[test]
    fn gcn_removes_fence_between_loads_only() {
        let test = corpus::mp(ThreadScope::InterCta, Some(FenceScope::Gl));
        let (compiled, report) = amd_compile(&test, AmdTarget::Gcn10);
        assert_eq!(report.fences_removed, 1, "the reader-side fence goes");
        // Writer-side fence (between stores) survives.
        let fences: usize = compiled
            .threads()
            .iter()
            .flatten()
            .filter(|i| i.is_fence())
            .count();
        assert_eq!(fences, 1);
        assert!(report.test_is_meaningful());
    }

    #[test]
    fn terascale_invalidates_dlb_lb() {
        let (compiled, report) = amd_compile(&corpus::dlb_lb(false), AmdTarget::TeraScale2);
        assert_eq!(report.load_cas_reordered, 1);
        assert!(!report.test_is_meaningful(), "the paper writes n/a here");
        // T1 now starts with the CAS.
        assert!(matches!(
            compiled.threads()[1][0].unguarded(),
            Instr::Cas { .. }
        ));
    }

    #[test]
    fn terascale_leaves_fences_alone() {
        let test = corpus::mp(ThreadScope::InterCta, Some(FenceScope::Gl));
        let (compiled, report) = amd_compile(&test, AmdTarget::TeraScale2);
        assert_eq!(report.fences_removed, 0);
        let fences: usize = compiled
            .threads()
            .iter()
            .flatten()
            .filter(|i| i.is_fence())
            .count();
        assert_eq!(fences, 2);
    }

    #[test]
    fn unfenced_tests_compile_unchanged_on_gcn() {
        let test = corpus::cas_sl(false);
        let (compiled, report) = amd_compile(&test, AmdTarget::Gcn10);
        assert_eq!(report, AmdCompileReport::default());
        assert_eq!(compiled.threads(), test.threads());
    }
}
