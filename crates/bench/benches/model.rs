//! Criterion benchmark for the axiomatic verdict-evaluation hot path —
//! the **cache-miss** side of the sweep, where a test's shape has not
//! been judged yet and every candidate execution must be run through the
//! model.
//!
//! Two evaluators over identical pre-enumerated candidates:
//!
//! * **tree-walk** — the legacy interpreter retained as the differential
//!   oracle: `base_relations()` (a fresh `String`-keyed `BTreeMap` of
//!   relations per execution) plus an AST walk that clones every `let`
//!   binding at each use;
//! * **plan** — the compiled evaluation plan behind `Model::allows_with`:
//!   names resolved to slots at compile time, bindings shared across
//!   checks, cheapest-first short-circuiting, and a reusable
//!   `EvalContext` arena (zero allocation per execution).
//!
//! Besides the criterion numbers, a JSON summary with verdicts/sec for
//! both paths is written to `BENCH_model.json` at the repository root so
//! the cache-miss path's throughput is tracked across PRs (skipped under
//! `--test`). The ISSUE-4 acceptance bar is `plan_speedup >= 3`.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use weakgpu_axiom::enumerate::{enumerate_executions, EnumConfig};
use weakgpu_axiom::plan::EvalContext;
use weakgpu_axiom::{CatModel, Execution};
use weakgpu_diy::{generate, GenConfig};
use weakgpu_litmus::corpus;
use weakgpu_models::ptx_model;

/// Pre-enumerated executions of a mixed workload: every corpus idiom
/// plus a slice of the generated `small` family — the same candidates
/// both evaluators judge.
fn workload() -> Vec<Execution> {
    let cfg = EnumConfig::default();
    let mut execs = Vec::new();
    for test in corpus::all() {
        for cand in enumerate_executions(&test, &cfg).unwrap() {
            execs.push(cand.execution);
        }
    }
    for test in generate(&GenConfig::small()).into_iter().take(40) {
        for cand in enumerate_executions(&test, &cfg).unwrap() {
            execs.push(cand.execution);
        }
    }
    execs
}

/// The legacy path: tree-walk interpretation per execution.
fn treewalk_verdicts(model: &CatModel, execs: &[Execution]) -> usize {
    execs
        .iter()
        .filter(|e| model.allows_tree_walk(e).unwrap())
        .count()
}

/// The compiled path: plan evaluation through one reused context.
fn plan_verdicts(model: &CatModel, ctx: &mut EvalContext, execs: &[Execution]) -> usize {
    execs.iter().filter(|e| model.allows_with(ctx, e)).count()
}

fn bench_verdict_evaluators(c: &mut Criterion) {
    let execs = workload();
    let model = ptx_model();
    let mut ctx = EvalContext::new();
    // Both paths must agree before we time anything.
    assert_eq!(
        treewalk_verdicts(&model, &execs),
        plan_verdicts(&model, &mut ctx, &execs)
    );
    let mut g = c.benchmark_group("model_verdicts");
    g.bench_function("tree_walk", |b| {
        b.iter(|| black_box(treewalk_verdicts(&model, &execs)));
    });
    g.bench_function("compiled_plan", |b| {
        b.iter(|| black_box(plan_verdicts(&model, &mut ctx, &execs)));
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_verdict_evaluators
}

/// Measures verdicts/sec over a fixed workload (outside criterion, so
/// the two numbers are directly comparable) and writes the JSON summary.
fn write_bench_json() {
    let execs = workload();
    let model = ptx_model();
    let mut ctx = EvalContext::new();

    // Repeat the workload so each measurement spans >= ~1s of work.
    let rounds = 40;
    let t0 = Instant::now();
    let mut a = 0usize;
    for _ in 0..rounds {
        a += black_box(treewalk_verdicts(&model, &execs));
    }
    let treewalk_vps = (rounds * execs.len()) as f64 / t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let mut b = 0usize;
    for _ in 0..rounds {
        b += black_box(plan_verdicts(&model, &mut ctx, &execs));
    }
    let plan_vps = (rounds * execs.len()) as f64 / t0.elapsed().as_secs_f64();
    assert_eq!(a, b, "both evaluators must agree on every verdict");

    let json = format!(
        "{{\n  \"bench\": \"model\",\n  \"model\": \"ptx-rmo-scoped\",\n  \"workload\": \"corpus + small[..40] candidate executions\",\n  \"executions\": {},\n  \"treewalk_verdicts_per_sec\": {treewalk_vps:.0},\n  \"plan_verdicts_per_sec\": {plan_vps:.0},\n  \"plan_speedup\": {:.3}\n}}\n",
        execs.len(),
        plan_vps / treewalk_vps
    );
    // CARGO_MANIFEST_DIR is crates/bench; the summary lives at the repo
    // root regardless of the invoking working directory.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_model.json");
    std::fs::write(path, &json).expect("write BENCH_model.json");
    println!("wrote {path}:\n{json}");
}

fn main() {
    benches();
    // `cargo test --benches` smoke-runs with `--test`: skip the timing
    // sweep there, it would measure a debug build.
    if !std::env::args().any(|a| a == "--test") {
        write_bench_json();
    }
}
