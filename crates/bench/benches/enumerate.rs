//! Criterion benchmark for the **end-to-end cache-miss verdict path**:
//! everything a sweep worker does the first time it meets a test shape —
//! enumerate the candidate executions *and* judge each one through the
//! PTX model's compiled plan.
//!
//! Two enumeration architectures over the same tests:
//!
//! * **materialised (PR-4 baseline)** — a frozen, line-for-line copy of
//!   the pre-streaming pipeline (the architecture behind the committed
//!   `BENCH_model.json` numbers): the read-value fixed point enumerates
//!   thread traces and then re-enumerates them, every trace combination
//!   rebuilds the event list and dependency relations from scratch,
//!   every rf×co choice clones all of it into an owned `Execution`
//!   plus an `Outcome`, and each candidate is judged with
//!   `Model::allows_with` (which refills *every* base relation per
//!   candidate) while outcome sets are folded candidate by candidate;
//! * **streaming** — `model_outcomes_with` over the skeleton/overlay
//!   visitor: one in-place-refilled `ExecutionSkeleton` per trace
//!   combination, an in-place rf/co `Overlay` per candidate, and plan
//!   evaluation that refills only the rf/co-derived base relations
//!   (skeleton-derived relations and the registers depending on them
//!   are computed once per skeleton).
//!
//! A third arm measures the **rf-class pruned walk**
//! ([`EnumConfig::pruning`]) against the exhaustive stream on a
//! multi-read fan shape (`corr-fan`), judged by the SC model: committing
//! one stale `rf` edge there forces a definite coherence cycle through
//! the partial interval bounds, so whole rf subtrees are cut. The shape
//! is judged under SC rather than the shipped PTX model deliberately —
//! PTX *allows* load-load hazards (the paper's LLH relaxation), so
//! nothing about the fan is forbidden and the pruner correctly finds
//! zero cuts there; the no-LLH ablation prunes like SC does.
//!
//! A fourth arm composes the pruned walk with **bit-plane batching**
//! ([`EnumConfig::batching`]): sibling subtrees of up to 64 leaves are
//! packed one-lane-per-leaf into an `OverlayBatch` with axis-masked
//! bulk ORs and judged with one lane-parallel plan pass each, so every
//! relational op covers all lanes per machine word. The batched arm is
//! measured under **both** fan judges: under SC it rides on top of the
//! cuts (which already cover ~98% of the space), and under the shipped
//! PTX model — which allows load-load hazards and so correctly finds
//! zero cuts on the fan — it is the only lever, turning the pruned
//! walk's degenerate per-leaf crawl into full-width uniform batches.
//!
//! A fifth arm evaluates the walk **incrementally**
//! ([`EnumConfig::incremental`]): plan registers and the Pearce–Kelly
//! maintained topological order are pushed and popped along the
//! decision-tree path through a word-level undo journal instead of
//! being refilled from scratch at every cut attempt, and the batched
//! composition seeds its lane cyclicity sweeps from the same
//! maintained order. Verdicts and walk-shape stats stay bit-identical.
//!
//! Besides the criterion numbers, a JSON summary with end-to-end
//! verdicts/sec for all paths is written to `BENCH_enumerate.json` at
//! the repository root (skipped under `--test`). The ISSUE-5 acceptance
//! bar is ≥ 2× end-to-end cache-miss verdicts/sec over the PR-4
//! baseline; the ISSUE-6 bar is ≥ 3× cache-miss verdicts/sec for the
//! pruned arm on at least one multi-read test class
//! (`pruned_speedup` in the JSON); the ISSUE-9 bar is ≥ 2× cache-miss
//! verdicts/sec for the pruned+batched arm over the pruned arm on at
//! least one fan workload — met on the PTX-judged fan
//! (`batched_speedup`), with the SC composition reported alongside
//! (`batched_sc_speedup`); the ISSUE-10 bar is ≥ 2× effective
//! verdicts/sec for the incremental walk over the pruned rate the
//! previous PR's run recorded in this file (`incremental_speedup`,
//! with the caveats spelled out in `incremental_speedup_note`).
//!
//! **Reading the two speedup numbers.** The in-repo `materialised` arm
//! freezes PR-4's *enumeration* but judges through the current compiled
//! plan, which this PR also made faster (n-ary union fusion, adaptive
//! check scheduling, RMW fast path). `streaming_speedup` therefore
//! isolates the enumeration architecture and *understates* the full
//! PR-over-PR win. Measured against the actual PR-4 commit (`git
//! worktree add /tmp/pr4 39c0346`, same workload, interleaved runs,
//! median-of-24-rounds each): PR-4 180,317 end-to-end verdicts/sec vs
//! streaming 384,546 — **2.13×**. That one-time measurement is quoted
//! in the JSON's note string only; every numeric field in
//! `BENCH_enumerate.json` is measured live by the run that wrote it.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use weakgpu_axiom::enumerate::{
    model_outcomes_counted, model_outcomes_with, EnumConfig, ModelOutcomes, PruneStats,
};
use weakgpu_axiom::event::Event;
use weakgpu_axiom::plan::EvalContext;
use weakgpu_axiom::relation::Relation;
use weakgpu_axiom::symbolic::{run_thread, SymResult, ThreadTrace};
use weakgpu_axiom::{Execution, Model};
use weakgpu_diy::{generate, GenConfig};
use weakgpu_litmus::{corpus, corpus_extra, FinalExpr, LitmusTest, Loc, Outcome, Reg};
use weakgpu_models::{ptx_model, sc_model};

/// The benchmark workload: every corpus idiom plus a deterministic
/// sample of the paper-scale generated family (every `stride`-th test,
/// so the sample spans the family's shape variety instead of one
/// prefix's).
fn workload() -> Vec<LitmusTest> {
    let mut tests = corpus::all();
    let paper = generate(&GenConfig::paper());
    let stride = (paper.len() / 40).max(1);
    tests.extend(paper.into_iter().step_by(stride).take(40));
    tests
}

// --------------------------------------------------------------------
// Frozen PR-4 baseline: the materialising enumeration pipeline exactly
// as committed before the streaming refactor (modulo renamed locals).
// Do not "optimise" this copy — it IS the baseline being measured.
// --------------------------------------------------------------------

mod pr4 {
    use super::*;

    /// One candidate execution together with its observable outcome.
    pub struct Candidate {
        pub execution: Execution,
        pub outcome: Outcome,
    }

    /// PR-4's depth-first oracle enumeration: every oracle attempt goes
    /// through the public [`run_thread`], which (like the code of that
    /// era) redoes label resolution and register pre-seeding per run.
    fn enumerate_thread_traces(
        tid: usize,
        instrs: &[weakgpu_litmus::Instr],
        reg_init: &dyn Fn(&Reg) -> weakgpu_litmus::Value,
        domains: &BTreeMap<Loc, BTreeSet<i64>>,
        max_steps: usize,
        max_traces: usize,
    ) -> Result<Vec<ThreadTrace>, String> {
        let mut traces = Vec::new();
        let mut stack: Vec<Vec<i64>> = vec![Vec::new()];
        while let Some(oracle) = stack.pop() {
            match run_thread(tid, instrs, reg_init, &oracle, max_steps) {
                SymResult::Complete(tr) => {
                    traces.push(tr);
                    if traces.len() > max_traces {
                        return Err("too many traces".to_owned());
                    }
                }
                SymResult::NeedValue { loc } => {
                    let dom = domains.get(&loc).cloned().unwrap_or_default();
                    for v in dom.into_iter().rev() {
                        let mut ext = oracle.clone();
                        ext.push(v);
                        stack.push(ext);
                    }
                }
                SymResult::Error(e) => return Err(e.to_string()),
            }
        }
        Ok(traces)
    }

    /// PR-4's per-location read-value fixed point.
    fn value_domains(test: &LitmusTest, cfg: &EnumConfig) -> BTreeMap<Loc, BTreeSet<i64>> {
        let mut domains: BTreeMap<Loc, BTreeSet<i64>> = test
            .memory()
            .iter()
            .map(|(l, mi)| (l.clone(), [mi.init].into_iter().collect()))
            .collect();
        for _ in 0..cfg.domain_iters {
            let mut changed = false;
            for (tid, code) in test.threads().iter().enumerate() {
                let init = |r: &Reg| test.reg_init_value(tid, r);
                let traces = enumerate_thread_traces(
                    tid,
                    code,
                    &init,
                    &domains,
                    cfg.max_steps_per_thread,
                    cfg.max_traces_per_thread,
                )
                .unwrap();
                for tr in &traces {
                    for e in &tr.events {
                        if e.kind.is_write() {
                            let loc = e.loc.clone().expect("writes have locations");
                            if domains.entry(loc).or_default().insert(e.value) {
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        domains
    }

    /// PR-4's `enumerate_executions`: a fresh trace enumeration after the
    /// fixed point, then per-combination rebuilds and per-candidate
    /// clones into a materialised `Vec<Candidate>`.
    pub fn enumerate_executions(test: &LitmusTest, cfg: &EnumConfig) -> Vec<Candidate> {
        let domains = value_domains(test, cfg);
        let mut per_thread: Vec<Vec<ThreadTrace>> = Vec::new();
        for (tid, code) in test.threads().iter().enumerate() {
            let init = |r: &Reg| test.reg_init_value(tid, r);
            per_thread.push(
                enumerate_thread_traces(
                    tid,
                    code,
                    &init,
                    &domains,
                    cfg.max_steps_per_thread,
                    cfg.max_traces_per_thread,
                )
                .unwrap(),
            );
        }

        let thread_cta: Vec<usize> = (0..test.num_threads())
            .map(|t| test.scope_tree().placement(t).cta)
            .collect();
        let init_mem: BTreeMap<Loc, i64> = test
            .memory()
            .iter()
            .map(|(l, mi)| (l.clone(), mi.init))
            .collect();
        let observed = test.observed();

        let mut out = Vec::new();
        let mut combo = vec![0usize; per_thread.len()];
        'combos: loop {
            let traces: Vec<&ThreadTrace> = combo
                .iter()
                .zip(&per_thread)
                .map(|(&i, ts)| &ts[i])
                .collect();
            expand_communications(&traces, &thread_cta, &init_mem, &observed, &mut out);

            for t in (0..combo.len()).rev() {
                combo[t] += 1;
                if combo[t] < per_thread[t].len() {
                    continue 'combos;
                }
                combo[t] = 0;
            }
            break;
        }
        out
    }

    fn expand_communications(
        traces: &[&ThreadTrace],
        thread_cta: &[usize],
        init_mem: &BTreeMap<Loc, i64>,
        observed: &[FinalExpr],
        out: &mut Vec<Candidate>,
    ) {
        let mut events: Vec<Event> = Vec::new();
        let mut offsets = Vec::with_capacity(traces.len());
        for tr in traces {
            offsets.push(events.len());
            for (i, e) in tr.events.iter().enumerate() {
                events.push(Event {
                    id: events.len(),
                    tid: tr.tid,
                    po_idx: i,
                    kind: e.kind,
                    loc: e.loc.clone(),
                    value: e.value,
                    cache: e.cache,
                    volatile: e.volatile,
                    atomic: e.atomic,
                    instr_idx: e.instr_idx,
                });
            }
        }
        let n = events.len();

        let mut addr = Relation::empty(n);
        let mut data = Relation::empty(n);
        let mut ctrl = Relation::empty(n);
        let mut rmw = Relation::empty(n);
        for (tr, &off) in traces.iter().zip(&offsets) {
            for (i, e) in tr.events.iter().enumerate() {
                for &d in &e.addr_deps {
                    addr.add(off + d, off + i);
                }
                for &d in &e.data_deps {
                    data.add(off + d, off + i);
                }
                for &d in &e.ctrl_deps {
                    ctrl.add(off + d, off + i);
                }
            }
            for &(r, w) in &tr.rmw_pairs {
                rmw.add(off + r, off + w);
            }
        }

        let reads: Vec<usize> = events
            .iter()
            .filter(|e| e.is_read())
            .map(|e| e.id)
            .collect();
        let mut rf_choices: Vec<Vec<Option<usize>>> = Vec::with_capacity(reads.len());
        for &r in &reads {
            let loc = events[r].loc.as_ref().expect("reads have locations");
            let v = events[r].value;
            let mut cands: Vec<Option<usize>> = Vec::new();
            if init_mem.get(loc).copied().unwrap_or(0) == v {
                cands.push(None);
            }
            for e in &events {
                if e.is_write() && e.accesses(loc) && e.value == v {
                    cands.push(Some(e.id));
                }
            }
            if cands.is_empty() {
                return;
            }
            rf_choices.push(cands);
        }

        let mut writes_by_loc: BTreeMap<Loc, Vec<usize>> = BTreeMap::new();
        for e in &events {
            if e.is_write() {
                writes_by_loc
                    .entry(e.loc.clone().expect("writes have locations"))
                    .or_default()
                    .push(e.id);
            }
        }
        let co_orders: Vec<(Loc, Vec<Vec<usize>>)> = writes_by_loc
            .into_iter()
            .map(|(l, ws)| (l, permutations(&ws)))
            .collect();

        let mut rf_idx = vec![0usize; reads.len()];
        'rf: loop {
            let mut rf = vec![None; n];
            for (k, &r) in reads.iter().enumerate() {
                rf[r] = rf_choices[k][rf_idx[k]];
            }

            let mut co_idx = vec![0usize; co_orders.len()];
            'co: loop {
                let co: BTreeMap<Loc, Vec<usize>> = co_orders
                    .iter()
                    .zip(&co_idx)
                    .map(|((l, perms), &i)| (l.clone(), perms[i].clone()))
                    .collect();

                let execution = Execution {
                    events: events.clone(),
                    thread_cta: thread_cta.to_vec(),
                    rf: rf.clone(),
                    co,
                    init: init_mem.clone(),
                    addr: addr.clone(),
                    data: data.clone(),
                    ctrl: ctrl.clone(),
                    rmw: rmw.clone(),
                };
                let outcome = outcome_of(traces, &execution, observed);
                out.push(Candidate { execution, outcome });

                for i in (0..co_idx.len()).rev() {
                    co_idx[i] += 1;
                    if co_idx[i] < co_orders[i].1.len() {
                        continue 'co;
                    }
                    co_idx[i] = 0;
                }
                break;
            }

            for k in (0..rf_idx.len()).rev() {
                rf_idx[k] += 1;
                if rf_idx[k] < rf_choices[k].len() {
                    continue 'rf;
                }
                rf_idx[k] = 0;
            }
            break;
        }
    }

    fn outcome_of(
        traces: &[&ThreadTrace],
        execution: &Execution,
        observed: &[FinalExpr],
    ) -> Outcome {
        let mut o = Outcome::new();
        for expr in observed {
            let v = match expr {
                FinalExpr::Reg(tid, reg) => {
                    traces.get(*tid).map(|tr| tr.final_int(reg)).unwrap_or(0)
                }
                FinalExpr::Mem(loc) => execution.final_memory(loc),
            };
            o.set(expr.clone(), v);
        }
        o
    }

    fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
        if items.is_empty() {
            return vec![Vec::new()];
        }
        let mut out = Vec::new();
        for (i, &x) in items.iter().enumerate() {
            let mut rest: Vec<usize> = items.to_vec();
            rest.remove(i);
            for mut tail in permutations(&rest) {
                tail.insert(0, x);
                out.push(tail);
            }
        }
        out
    }

    /// PR-4's `model_outcomes_with`: materialise, then fold each owned
    /// execution and cloned outcome into the verdict sets.
    pub fn model_outcomes_with(
        test: &LitmusTest,
        model: &dyn Model,
        cfg: &EnumConfig,
        ctx: &mut EvalContext,
    ) -> ModelOutcomes {
        let candidates = enumerate_executions(test, cfg);
        let mut all = BTreeSet::new();
        let mut allowed = BTreeSet::new();
        let mut num_allowed = 0;
        let mut witnessed = false;
        for c in &candidates {
            all.insert(c.outcome.clone());
            if model.allows_with(ctx, &c.execution) {
                num_allowed += 1;
                if test.cond().witnessed_by(&c.outcome) {
                    witnessed = true;
                }
                allowed.insert(c.outcome.clone());
            }
        }
        ModelOutcomes {
            all_outcomes: all,
            allowed_outcomes: allowed,
            num_candidates: candidates.len(),
            num_allowed,
            condition_witnessed: witnessed,
        }
    }
}

/// The PR-4 cache-miss path over the workload. Returns (candidates,
/// allowed).
fn materialised_pass(
    tests: &[LitmusTest],
    model: &dyn Model,
    ctx: &mut EvalContext,
    cfg: &EnumConfig,
) -> (usize, usize) {
    let mut candidates = 0usize;
    let mut allowed_total = 0usize;
    for test in tests {
        let out = pr4::model_outcomes_with(test, model, cfg, ctx);
        candidates += out.num_candidates;
        allowed_total += out.num_allowed;
    }
    (candidates, allowed_total)
}

/// The streaming cache-miss path, exactly as the sweep worker runs it.
fn streaming_pass(
    tests: &[LitmusTest],
    model: &dyn Model,
    ctx: &mut EvalContext,
    cfg: &EnumConfig,
) -> (usize, usize) {
    let mut candidates = 0usize;
    let mut allowed = 0usize;
    for test in tests {
        let out = model_outcomes_with(test, model, cfg, ctx).unwrap();
        candidates += out.num_candidates;
        allowed += out.num_allowed;
    }
    (candidates, allowed)
}

/// The fan shape and budgets for the pruned and batched arms. `(2, 12)`
/// spans 1,062,882 candidates; the pruned walk visits 24,570 classes,
/// and the batched walk packs the surviving leaves into 64-lane
/// bit-plane passes on top of the same cuts.
fn fan_setup() -> (LitmusTest, EnumConfig, EnumConfig, EnumConfig) {
    let test = corpus_extra::corr_fan(2, 12);
    let exhaustive = EnumConfig {
        max_traces_per_thread: 1 << 14,
        max_executions: 3_000_000,
        ..EnumConfig::default()
    };
    let pruned = EnumConfig {
        pruning: true,
        ..exhaustive
    };
    let batched = EnumConfig {
        batching: true,
        ..pruned
    };
    (test, exhaustive, pruned, batched)
}

/// The incremental variants of the fan configs: the same walks with
/// push/pop delta evaluation along the path.
fn incremental_setup() -> (EnumConfig, EnumConfig) {
    let (_, _, pruned, batched) = fan_setup();
    let incremental = EnumConfig {
        incremental: true,
        ..pruned
    };
    let incremental_batched = EnumConfig {
        incremental: true,
        ..batched
    };
    (incremental, incremental_batched)
}

/// One full cache-miss verdict of the fan through `cfg`. Returns
/// `(candidates, walk stats)`.
fn fan_pass(
    test: &LitmusTest,
    model: &dyn Model,
    cfg: &EnumConfig,
    ctx: &mut EvalContext,
) -> (usize, PruneStats) {
    let (out, stats) = model_outcomes_counted(test, model, cfg, ctx).unwrap();
    (out.num_candidates, stats)
}

fn bench_enumerators(c: &mut Criterion) {
    let tests = workload();
    let model = ptx_model();
    let cfg = EnumConfig::default();
    // One context per arm, like one per sweep worker: the arms must not
    // clobber each other's cached skeleton-derived registers.
    let mut mat_ctx = EvalContext::new();
    let mut stream_ctx = EvalContext::new();
    // Both architectures must produce bit-identical verdicts on every
    // test before we time anything.
    for test in &tests {
        assert_eq!(
            pr4::model_outcomes_with(test, &model, &cfg, &mut mat_ctx),
            model_outcomes_with(test, &model, &cfg, &mut stream_ctx).unwrap(),
            "{}",
            test.name()
        );
    }
    let mut g = c.benchmark_group("cache_miss_enumeration");
    g.bench_function("materialised", |b| {
        b.iter(|| black_box(materialised_pass(&tests, &model, &mut mat_ctx, &cfg)));
    });
    g.bench_function("streaming", |b| {
        b.iter(|| black_box(streaming_pass(&tests, &model, &mut stream_ctx, &cfg)));
    });
    g.finish();

    // The pruned arm on a small fan (criterion-friendly size; the JSON
    // summary times the full 2w12r shape).
    let fan = corpus_extra::corr_fan(2, 8);
    let sc = sc_model();
    let (_, exhaustive_cfg, pruned_cfg, batched_cfg) = fan_setup();
    let mut g = c.benchmark_group("pruned_fan_2w8r");
    g.bench_function("exhaustive", |b| {
        b.iter(|| black_box(fan_pass(&fan, &sc, &exhaustive_cfg, &mut stream_ctx)));
    });
    g.bench_function("pruned", |b| {
        b.iter(|| black_box(fan_pass(&fan, &sc, &pruned_cfg, &mut stream_ctx)));
    });
    g.bench_function("pruned_batched", |b| {
        b.iter(|| black_box(fan_pass(&fan, &sc, &batched_cfg, &mut stream_ctx)));
    });
    // The delta-journal walks: same cuts and batches, with plan state
    // and cycle detection maintained along the path.
    let (incremental_cfg, inc_batched_cfg) = incremental_setup();
    g.bench_function("incremental", |b| {
        b.iter(|| black_box(fan_pass(&fan, &sc, &incremental_cfg, &mut stream_ctx)));
    });
    g.bench_function("incremental_batched", |b| {
        b.iter(|| black_box(fan_pass(&fan, &sc, &inc_batched_cfg, &mut stream_ctx)));
    });
    // The cut-free judge: PTX finds no cuts on the fan, so these two
    // arms isolate what lane packing alone buys.
    g.bench_function("ptx_pruned", |b| {
        b.iter(|| black_box(fan_pass(&fan, &model, &pruned_cfg, &mut stream_ctx)));
    });
    g.bench_function("ptx_pruned_batched", |b| {
        b.iter(|| black_box(fan_pass(&fan, &model, &batched_cfg, &mut stream_ctx)));
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_enumerators
}

/// Measures end-to-end verdicts/sec over the fixed workload (outside
/// criterion, so the two numbers are directly comparable) and writes the
/// JSON summary. The two arms run in strictly alternating rounds and
/// each arm reports its **median** round time, so a noisy-neighbour or
/// thermal-throttling window hits both arms alike instead of whichever
/// one happened to be running.
fn write_bench_json() {
    let tests = workload();
    let model = ptx_model();
    let cfg = EnumConfig::default();
    let mut mat_ctx = EvalContext::new();
    let mut stream_ctx = EvalContext::new();

    let rounds = 16;
    let mut mat = (0usize, 0usize);
    let mut stream = (0usize, 0usize);
    let mut mat_times = Vec::with_capacity(rounds);
    let mut stream_times = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = Instant::now();
        let (c, a) = black_box(materialised_pass(&tests, &model, &mut mat_ctx, &cfg));
        mat_times.push(t0.elapsed().as_secs_f64());
        mat = (c, a);

        let t0 = Instant::now();
        let (c, a) = black_box(streaming_pass(&tests, &model, &mut stream_ctx, &cfg));
        stream_times.push(t0.elapsed().as_secs_f64());
        stream = (c, a);
    }
    assert_eq!(mat, stream, "both enumerators must agree on every count");
    let median = |times: &mut Vec<f64>| {
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    };
    let materialised_vps = mat.0 as f64 / median(&mut mat_times);
    let streaming_vps = stream.0 as f64 / median(&mut stream_times);

    // The pruned and batched arms: the full fan shape, same alternating
    // median-of-rounds discipline, under two judges. All arms judge the
    // same candidate space, so verdicts/sec uses the candidate count
    // for each — the pruned and batched numbers are the *effective*
    // judging rates their cuts and lane packing buy. SC is the
    // cut-friendly judge (batching rides on top of the cuts); PTX
    // allows load-load hazards, so it correctly finds zero cuts on the
    // fan and the pruned walk degenerates to per-leaf judging — the
    // fan workload where lane packing is the only lever.
    let (fan, exhaustive_cfg, pruned_cfg, batched_cfg) = fan_setup();
    let (incremental_cfg, inc_batched_cfg) = incremental_setup();
    let sc = sc_model();
    let fan_rounds = 8;
    let mut fan_ex_times = Vec::with_capacity(fan_rounds);
    let mut fan_pr_times = Vec::with_capacity(fan_rounds);
    let mut fan_ba_times = Vec::with_capacity(fan_rounds);
    let mut ptx_pr_times = Vec::with_capacity(fan_rounds);
    let mut ptx_ba_times = Vec::with_capacity(fan_rounds);
    let mut inc_times = Vec::with_capacity(fan_rounds);
    let mut inc_ba_times = Vec::with_capacity(fan_rounds);
    let mut fan_counts = (0usize, 0u64);
    let mut fan_pr_stats = PruneStats::default();
    let mut fan_ba_stats = PruneStats::default();
    let mut ptx_ba_stats = PruneStats::default();
    let mut inc_stats = PruneStats::default();
    for _ in 0..fan_rounds {
        let t0 = Instant::now();
        let (cand, _) = black_box(fan_pass(&fan, &sc, &exhaustive_cfg, &mut stream_ctx));
        fan_ex_times.push(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let (c2, stats) = black_box(fan_pass(&fan, &sc, &pruned_cfg, &mut stream_ctx));
        fan_pr_times.push(t0.elapsed().as_secs_f64());
        assert_eq!(cand, c2, "both arms must span the same candidate space");
        fan_counts = (cand, stats.classes_visited);
        fan_pr_stats = stats;

        let t0 = Instant::now();
        let (c3, stats) = black_box(fan_pass(&fan, &sc, &batched_cfg, &mut stream_ctx));
        fan_ba_times.push(t0.elapsed().as_secs_f64());
        assert_eq!(cand, c3, "all arms must span the same candidate space");
        fan_ba_stats = stats;

        let t0 = Instant::now();
        let (c4, _) = black_box(fan_pass(&fan, &model, &pruned_cfg, &mut stream_ctx));
        ptx_pr_times.push(t0.elapsed().as_secs_f64());
        assert_eq!(cand, c4, "all arms must span the same candidate space");

        let t0 = Instant::now();
        let (c5, stats) = black_box(fan_pass(&fan, &model, &batched_cfg, &mut stream_ctx));
        ptx_ba_times.push(t0.elapsed().as_secs_f64());
        assert_eq!(cand, c5, "all arms must span the same candidate space");
        ptx_ba_stats = stats;

        let t0 = Instant::now();
        let (c6, stats) = black_box(fan_pass(&fan, &sc, &incremental_cfg, &mut stream_ctx));
        inc_times.push(t0.elapsed().as_secs_f64());
        assert_eq!(cand, c6, "all arms must span the same candidate space");
        // PruneStats equality is walk shape only — the incremental walk
        // must cut and visit exactly like the from-scratch walk.
        assert_eq!(
            fan_pr_stats, stats,
            "incremental walk must keep the pruned walk's shape"
        );
        inc_stats = stats;

        let t0 = Instant::now();
        let (c7, stats) = black_box(fan_pass(&fan, &sc, &inc_batched_cfg, &mut stream_ctx));
        inc_ba_times.push(t0.elapsed().as_secs_f64());
        assert_eq!(cand, c7, "all arms must span the same candidate space");
        assert_eq!(
            fan_ba_stats, stats,
            "incremental batched walk must keep the batched walk's shape"
        );
    }
    let fan_exhaustive_vps = fan_counts.0 as f64 / median(&mut fan_ex_times);
    let fan_pruned_vps = fan_counts.0 as f64 / median(&mut fan_pr_times);
    let fan_batched_sc_vps = fan_counts.0 as f64 / median(&mut fan_ba_times);
    let ptx_pruned_vps = fan_counts.0 as f64 / median(&mut ptx_pr_times);
    let ptx_batched_vps = fan_counts.0 as f64 / median(&mut ptx_ba_times);
    let incremental_vps = fan_counts.0 as f64 / median(&mut inc_times);
    let incremental_batched_vps = fan_counts.0 as f64 / median(&mut inc_ba_times);
    // The pruned rate the previous PR's run recorded in this file — the
    // frozen yardstick the ISSUE-10 acceptance bar is measured against
    // (same workload, same machine class, committed alongside that PR).
    const PREV_PRUNED_VPS: f64 = 20_113_247.0;

    let json = format!(
        "{{\n  \"bench\": \"enumerate\",\n  \"model\": \"ptx-rmo-scoped\",\n  \"workload\": \"corpus + paper-family sample, end-to-end cache-miss verdicts\",\n  \"tests\": {},\n  \"candidates_per_pass\": {},\n  \"materialised_verdicts_per_sec\": {materialised_vps:.0},\n  \"streaming_verdicts_per_sec\": {streaming_vps:.0},\n  \"streaming_speedup\": {:.3},\n  \"streaming_speedup_note\": \"vs the in-repo frozen PR-4 enumeration arm, which shares this PR's plan-evaluator speedups, so this is a conservative lower bound on the PR-over-PR gain; a one-time measurement against the actual PR-4 commit (39c0346) on this workload gave 2.13x end-to-end — see benches/enumerate.rs for the worktree recipe\",\n  \"pruned_test\": \"{}\",\n  \"pruned_model\": \"sc\",\n  \"pruned_candidates\": {},\n  \"pruned_classes_visited\": {},\n  \"pruned_exhaustive_verdicts_per_sec\": {fan_exhaustive_vps:.0},\n  \"pruned_verdicts_per_sec\": {fan_pruned_vps:.0},\n  \"pruned_speedup\": {:.3},\n  \"pruned_speedup_note\": \"rf-class pruned walk vs the exhaustive stream on the same multi-read fan, judged under SC; verdicts/sec divides the shared candidate-space size by wall time, so the pruned rate is the effective judging rate the subtree cuts buy. The shipped PTX model allows load-load hazards, so it correctly finds zero cuts on this shape — the no-LLH ablation prunes like SC\",\n  \"batched_model\": \"ptx\",\n  \"batched_pruned_verdicts_per_sec\": {ptx_pruned_vps:.0},\n  \"batched_verdicts_per_sec\": {ptx_batched_vps:.0},\n  \"batched_batches_formed\": {},\n  \"batched_lanes_filled\": {},\n  \"batched_speedup\": {:.3},\n  \"batched_speedup_note\": \"pruned+batched bit-plane walk vs the pruned walk on the same fan under the shipped PTX model, which allows load-load hazards and so correctly finds zero interval cuts on this shape: with no cuts to lean on, the pruned walk degenerates to per-leaf judging while the batched walk packs each sibling subtree into one 64-lane plan pass via axis-masked bulk ORs and reports uniform batches as single classes\",\n  \"batched_sc_verdicts_per_sec\": {fan_batched_sc_vps:.0},\n  \"batched_sc_batches_formed\": {},\n  \"batched_sc_lanes_filled\": {},\n  \"batched_sc_speedup\": {:.3},\n  \"batched_sc_note\": \"the same composition under SC, whose interval cuts already cover ~98 percent of the fan: batching only accelerates the leaves the cuts keep, so the marginal win is modest by construction — the PTX number is the cut-free showcase\",\n  \"incremental_model\": \"sc\",\n  \"incremental_verdicts_per_sec\": {incremental_vps:.0},\n  \"incremental_batched_verdicts_per_sec\": {incremental_batched_vps:.0},\n  \"pruned_cut_attempt_micros\": {},\n  \"incremental_cut_attempt_micros\": {},\n  \"pruned_registers_refilled\": {},\n  \"incremental_registers_refilled\": {},\n  \"incremental_speedup\": {:.3},\n  \"incremental_speedup_note\": \"incremental+batched walk vs the pruned_verdicts_per_sec the previous PR's run recorded in this file (20,113,247) — the frozen yardstick for the delta-evaluation acceptance bar. Two levers compose: the push/pop delta journal roughly halves cut-attempt wall time and collapses register refills to per-combination baselines (compare the cut_attempt_micros and registers_refilled field pairs), and a trace-combination cache landed with it removes the per-pass fixed-point recomputation for every arm, so this run's re-measured pruned arm is faster than the frozen yardstick too. The scalar (unbatched) incremental rate is recorded alongside; every numeric field except the yardstick inside this note is measured live by the run that wrote it\"\n}}\n",
        tests.len(),
        mat.0,
        streaming_vps / materialised_vps,
        fan.name(),
        fan_counts.0,
        fan_counts.1,
        fan_pruned_vps / fan_exhaustive_vps,
        ptx_ba_stats.batches_formed,
        ptx_ba_stats.lanes_filled,
        ptx_batched_vps / ptx_pruned_vps,
        fan_ba_stats.batches_formed,
        fan_ba_stats.lanes_filled,
        fan_batched_sc_vps / fan_pruned_vps,
        fan_pr_stats.cut_attempt_micros,
        inc_stats.cut_attempt_micros,
        fan_pr_stats.registers_refilled,
        inc_stats.registers_refilled,
        incremental_batched_vps / PREV_PRUNED_VPS
    );
    // CARGO_MANIFEST_DIR is crates/bench; the summary lives at the repo
    // root regardless of the invoking working directory.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_enumerate.json");
    std::fs::write(path, &json).expect("write BENCH_enumerate.json");
    println!("wrote {path}:\n{json}");
}

fn main() {
    benches();
    // `cargo test --benches` smoke-runs with `--test`: skip the timing
    // sweep there, it would measure a debug build.
    if !std::env::args().any(|a| a == "--test") {
        write_bench_json();
    }
}
