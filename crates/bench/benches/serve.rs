//! Criterion benchmark for the persistence + serving layer: the verdict
//! phase of a `--cache-file` sweep run cold (every shape enumerated,
//! cache persisted to disk) versus warm (cache restored from disk,
//! every cell answered by lookup), plus the request throughput of a
//! warm `serve` session. Simulation time is identical on both arms and
//! is excluded — cells/sec here is the verdict work the cache file
//! actually amortises across CI shards and serve restarts.
//!
//! Besides the criterion numbers, a JSON summary is written to
//! `BENCH_serve.json` at the repository root so the warm-over-cold
//! speedup and serving throughput are tracked across PRs (skipped under
//! `--test`).

use std::io::Cursor;
use std::sync::Mutex;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use weakgpu_axiom::cache::VerdictCache;
use weakgpu_axiom::enumerate::EnumConfig;
use weakgpu_axiom::persist;
use weakgpu_axiom::plan::EvalContext;
use weakgpu_diy::{generate, GenConfig};
use weakgpu_harness::serve::{serve, ServeConfig};
use weakgpu_litmus::LitmusTest;
use weakgpu_models::ptx_model;
use weakgpu_sim::chip::Chip;

/// Chips per test: the Sec. 5.4 validation columns.
const CHIPS: usize = Chip::NVIDIA_TABLED.len();

fn family(n: usize) -> Vec<LitmusTest> {
    generate(&GenConfig::small()).into_iter().take(n).collect()
}

fn cache_path() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("weakgpu-bench-serve-{}.wgc", std::process::id()))
}

/// Cold arm: a fresh cache judges every (test, chip) cell and persists
/// the result — the first CI shard's verdict work.
fn cold_cells(tests: &[LitmusTest]) -> usize {
    let model = ptx_model();
    let cfg = EnumConfig::default();
    let mut ctx = EvalContext::new();
    let mut cache = VerdictCache::new();
    let mut allowed = 0usize;
    for test in tests {
        for _chip in 0..CHIPS {
            let v = cache.outcomes_with(test, &model, &cfg, &mut ctx).unwrap();
            allowed += v.allowed_outcomes.len();
        }
    }
    persist::save(&cache_path(), &cache).unwrap();
    allowed
}

/// Warm arm: the persisted cache is restored and answers every cell —
/// the later shards' (and restarted daemons') verdict work.
fn warm_cells(tests: &[LitmusTest]) -> usize {
    let model = ptx_model();
    let cfg = EnumConfig::default();
    let mut ctx = EvalContext::new();
    let mut cache = persist::load(&cache_path()).unwrap();
    let mut allowed = 0usize;
    for test in tests {
        for _chip in 0..CHIPS {
            let v = cache.outcomes_with(test, &model, &cfg, &mut ctx).unwrap();
            allowed += v.allowed_outcomes.len();
        }
    }
    assert_eq!(cache.misses(), 0, "a warm run must not enumerate");
    allowed
}

/// One JSONL batch cycling through the family's corpus-independent
/// inline requests by test name order — what a serve client streams.
fn request_batch(tests: &[LitmusTest], requests: usize) -> String {
    let mut batch = String::new();
    for i in 0..requests {
        let name = tests[i % tests.len()].name();
        batch.push_str(&format!("{{\"id\": {i}, \"test\": \"{name}\"}}\n",));
    }
    batch
}

/// Answers `batch` through a serve session over a warm cache; returns
/// the number of responses written.
fn serve_batch(batch: &str, cache: &Mutex<VerdictCache>) -> usize {
    let mut out = Vec::new();
    let summary = serve(Cursor::new(batch), &mut out, &ServeConfig::default(), cache).unwrap();
    assert_eq!(summary.errors, 0);
    summary.requests as usize
}

fn bench_serve_paths(c: &mut Criterion) {
    let tests = family(30);
    cold_cells(&tests); // seed the disk cache for the warm arm
    let mut g = c.benchmark_group("serve_verdicts");
    g.bench_function("cold_sweep_cells_30x5", |b| {
        b.iter(|| black_box(cold_cells(&tests)));
    });
    g.bench_function("warm_sweep_cells_30x5", |b| {
        b.iter(|| black_box(warm_cells(&tests)));
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_serve_paths
}

/// Measures both arms plus serve throughput over fixed workloads
/// (outside criterion, so the numbers are directly comparable) and
/// writes the JSON summary.
fn write_bench_json() {
    // Corpus-named requests only exist for corpus tests; the sweep arms
    // use the generated family, the serve arm the full named corpus.
    let tests = family(100);
    let cells = tests.len() * CHIPS;

    let t0 = Instant::now();
    let a = black_box(cold_cells(&tests));
    let cold_cps = cells as f64 / t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let b = black_box(warm_cells(&tests));
    let warm_cps = cells as f64 / t0.elapsed().as_secs_f64();
    assert_eq!(a, b, "both arms must agree on every verdict");

    // Serve throughput: a warmed daemon answering a large batch of
    // repeat requests (the steady state of a verdict service).
    let corpus = weakgpu_litmus::corpus::all();
    let requests = 2_000;
    let batch = request_batch(&corpus, requests);
    let cache = Mutex::new(VerdictCache::new());
    serve_batch(&batch, &cache); // warm the shared cache
    let t0 = Instant::now();
    let answered = black_box(serve_batch(&batch, &cache));
    let rps = answered as f64 / t0.elapsed().as_secs_f64();

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"family\": \"small[..100]\",\n  \"chips\": {CHIPS},\n  \"cells\": {cells},\n  \"cold_cells_per_sec\": {cold_cps:.0},\n  \"warm_cells_per_sec\": {warm_cps:.0},\n  \"warm_speedup\": {:.3},\n  \"serve_requests\": {requests},\n  \"serve_requests_per_sec\": {rps:.0}\n}}\n",
        warm_cps / cold_cps
    );
    // CARGO_MANIFEST_DIR is crates/bench; the summary lives at the repo
    // root regardless of the invoking working directory.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}:\n{json}");
    let _ = std::fs::remove_file(cache_path());
}

fn main() {
    benches();
    // `cargo test --benches` smoke-runs with `--test`: skip the timing
    // sweep there, it would measure a debug build.
    if !std::env::args().any(|a| a == "--test") {
        write_bench_json();
    }
}
