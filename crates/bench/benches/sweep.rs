//! Criterion benchmark for the sweep's model-verdict hot path: judging
//! every (test, chip) cell of a generated family against the PTX model
//! by fresh enumeration (`model_outcomes` per cell, the historical
//! `tab_validation` behaviour) versus through the shape-keyed
//! [`VerdictCache`] (one enumeration per test shape, cache hits for the
//! other chips' cells).
//!
//! Besides the criterion numbers, a JSON summary with cells/sec for both
//! paths is written to `BENCH_sweep.json` at the repository root so the
//! sweep's verdict throughput is tracked across PRs (skipped under
//! `--test`).

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use weakgpu_axiom::cache::VerdictCache;
use weakgpu_axiom::enumerate::{model_outcomes, EnumConfig};
use weakgpu_diy::{generate, GenConfig};
use weakgpu_litmus::LitmusTest;
use weakgpu_models::ptx_model;
use weakgpu_sim::chip::Chip;

/// Chips per test: the Sec. 5.4 validation columns.
const CHIPS: usize = Chip::NVIDIA_TABLED.len();

fn family(n: usize) -> Vec<LitmusTest> {
    generate(&GenConfig::small()).into_iter().take(n).collect()
}

/// The pre-sweep path: every cell re-enumerates its test's executions.
fn uncached_cells(tests: &[LitmusTest]) -> usize {
    let model = ptx_model();
    let cfg = EnumConfig::default();
    let mut allowed = 0usize;
    for test in tests {
        for _chip in 0..CHIPS {
            let v = model_outcomes(test, &model, &cfg).unwrap();
            allowed += v.allowed_outcomes.len();
        }
    }
    allowed
}

/// The sweep path: one enumeration per shape, hash hits for the rest.
fn cached_cells(tests: &[LitmusTest]) -> usize {
    let model = ptx_model();
    let cfg = EnumConfig::default();
    let mut cache = VerdictCache::new();
    let mut allowed = 0usize;
    for test in tests {
        for _chip in 0..CHIPS {
            let v = cache.outcomes(test, &model, &cfg).unwrap();
            allowed += v.allowed_outcomes.len();
        }
    }
    assert_eq!(cache.misses(), tests.len() as u64);
    allowed
}

fn bench_verdict_paths(c: &mut Criterion) {
    let tests = family(30);
    let mut g = c.benchmark_group("sweep_verdicts");
    g.bench_function("uncached_per_cell_30x5", |b| {
        b.iter(|| black_box(uncached_cells(&tests)));
    });
    g.bench_function("cached_by_shape_30x5", |b| {
        b.iter(|| black_box(cached_cells(&tests)));
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_verdict_paths
}

/// Measures cells/sec over a fixed workload (outside criterion, so the
/// two numbers are directly comparable) and writes the JSON summary.
fn write_bench_json() {
    let tests = family(100);
    let cells = tests.len() * CHIPS;

    let t0 = Instant::now();
    let a = black_box(uncached_cells(&tests));
    let uncached_cps = cells as f64 / t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let b = black_box(cached_cells(&tests));
    let cached_cps = cells as f64 / t0.elapsed().as_secs_f64();
    assert_eq!(a, b, "both paths must agree on every verdict");

    let json = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"family\": \"small[..100]\",\n  \"chips\": {CHIPS},\n  \"cells\": {cells},\n  \"uncached_cells_per_sec\": {uncached_cps:.0},\n  \"cached_cells_per_sec\": {cached_cps:.0},\n  \"cache_speedup\": {:.3}\n}}\n",
        cached_cps / uncached_cps
    );
    // CARGO_MANIFEST_DIR is crates/bench; the summary lives at the repo
    // root regardless of the invoking working directory.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, &json).expect("write BENCH_sweep.json");
    println!("wrote {path}:\n{json}");
}

fn main() {
    benches();
    // `cargo test --benches` smoke-runs with `--test`: skip the timing
    // sweep there, it would measure a debug build.
    if !std::env::args().any(|a| a == "--test") {
        write_bench_json();
    }
}
