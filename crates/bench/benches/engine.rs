//! Criterion benchmarks for the engine itself: simulator throughput,
//! harness batches, candidate-execution enumeration, `.cat` evaluation vs
//! the native model (ablation, DESIGN.md §5.3), and diy generation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

use weakgpu_axiom::enumerate::{enumerate_executions, EnumConfig};
use weakgpu_axiom::Model;
use weakgpu_diy::{generate, GenConfig};
use weakgpu_harness::runner::{run_test, RunConfig};
use weakgpu_litmus::{corpus, parser, ThreadScope};
use weakgpu_models::{native::NativePtxModel, ptx_model};
use weakgpu_sim::chip::{Chip, Incantations};
use weakgpu_sim::machine::Simulator;

fn bench_sim_run_once(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_run_once");
    for (name, test) in [
        ("corr", corpus::corr()),
        ("mp", corpus::mp(ThreadScope::InterCta, None)),
        ("dlb_lb", corpus::dlb_lb(false)),
    ] {
        let sim = Simulator::compile(&test, Chip::GtxTitan).unwrap();
        let weights = Chip::GtxTitan
            .profile()
            .weights(&Incantations::best_inter_cta());
        g.bench_function(name, |b| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| black_box(sim.run_once_with_weights(&weights, true, &mut rng).unwrap()));
        });
    }
    g.finish();
}

fn bench_harness_batch(c: &mut Criterion) {
    let test = corpus::mp(ThreadScope::InterCta, None);
    let cfg = RunConfig {
        iterations: 1_000,
        incantations: Incantations::best_inter_cta(),
        seed: 3,
        parallelism: Some(1),
    };
    c.bench_function("harness_1k_runs", |b| {
        b.iter(|| black_box(run_test(&test, Chip::GtxTitan, &cfg).unwrap()))
    });
}

fn bench_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("enumerate_candidates");
    for (name, test) in [
        ("corr", corpus::corr()),
        ("mp", corpus::mp(ThreadScope::InterCta, None)),
        ("sb", corpus::sb(ThreadScope::InterCta, None)),
        ("dlb_lb", corpus::dlb_lb(false)),
        ("sl_future_fixed", corpus::sl_future(true)),
    ] {
        let cfg = EnumConfig::default();
        g.bench_function(name, |b| {
            b.iter(|| black_box(enumerate_executions(&test, &cfg).unwrap().len()))
        });
    }
    g.finish();
}

fn bench_cat_vs_native(c: &mut Criterion) {
    // Ablation: interpreted .cat model vs the hard-coded native model.
    let test = corpus::dlb_lb(false);
    let cands = enumerate_executions(&test, &EnumConfig::default()).unwrap();
    let cat = ptx_model();
    let native = NativePtxModel::new();
    let mut g = c.benchmark_group("model_eval");
    g.bench_function("cat_interpreted", |b| {
        b.iter_batched(
            || cands.clone(),
            |cs| cs.iter().filter(|cand| cat.allows(&cand.execution)).count(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("native", |b| {
        b.iter_batched(
            || cands.clone(),
            |cs| {
                cs.iter()
                    .filter(|cand| native.allows(&cand.execution))
                    .count()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_diy_generation(c: &mut Criterion) {
    c.bench_function("diy_generate_small", |b| {
        b.iter(|| black_box(generate(&GenConfig::small()).len()))
    });
}

fn bench_parse_print(c: &mut Criterion) {
    let text = corpus::dlb_mp(true).to_string();
    c.bench_function("parse_litmus", |b| {
        b.iter(|| black_box(parser::parse(&text).unwrap()))
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets =
        bench_sim_run_once,
        bench_harness_batch,
        bench_enumeration,
        bench_cat_vs_native,
        bench_diy_generation,
        bench_parse_print
}
criterion_main!(benches);
