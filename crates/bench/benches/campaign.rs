//! Criterion benchmark for the campaign engine's amortised hot path: the
//! historical per-run-allocation path (`run_once_with_weights`, which
//! builds a fresh `MachineState` and materialises an `Outcome` every
//! iteration) against the batch path (`run_batch` over one reused state
//! plus the indexed `ObsCounts` collector).
//!
//! Besides the criterion numbers, a JSON summary with runs/sec for both
//! paths is written to `BENCH_campaign.json` at the repository root so
//! later PRs can track the trajectory (skipped under `--test`).

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

use weakgpu_harness::Histogram;
use weakgpu_litmus::{corpus, ThreadScope};
use weakgpu_sim::chip::{Chip, Incantations, RunWeights};
use weakgpu_sim::machine::{ObsCounts, Simulator};

const BATCH: usize = 500;

fn setup() -> (Simulator, RunWeights, bool) {
    let test = corpus::mp(ThreadScope::InterCta, None);
    let sim = Simulator::compile(&test, Chip::GtxTitan).unwrap();
    let inc = Incantations::best_inter_cta();
    let weights = Chip::GtxTitan.profile().weights(&inc);
    (sim, weights, inc.thread_rand)
}

/// The pre-campaign path: allocate run state and clone `FinalExpr`s into
/// an `Outcome` on every iteration.
fn naive_batch(
    sim: &Simulator,
    w: &RunWeights,
    thread_rand: bool,
    rng: &mut SmallRng,
    n: usize,
) -> Histogram {
    let mut h = Histogram::new();
    for _ in 0..n {
        let outcome = sim.run_once_with_weights(w, thread_rand, rng).unwrap();
        h.record(outcome);
    }
    h
}

/// The campaign path: one reused state, indexed outcome counts, and one
/// `Outcome` materialisation per distinct observation vector.
fn amortised_batch(
    sim: &Simulator,
    w: &RunWeights,
    thread_rand: bool,
    rng: &mut SmallRng,
    n: usize,
) -> Histogram {
    let mut state = sim.new_state();
    let mut counts = ObsCounts::new();
    sim.run_batch(n, w, thread_rand, rng, &mut state, &mut counts)
        .unwrap();
    let mut h = Histogram::new();
    for (obs, c) in counts.iter() {
        h.add(sim.outcome_from_obs(obs), c);
    }
    h
}

fn bench_naive_vs_batch(c: &mut Criterion) {
    let (sim, weights, thread_rand) = setup();
    let mut g = c.benchmark_group("campaign_path");
    g.bench_function("naive_per_run_alloc_500", |b| {
        let mut rng = SmallRng::seed_from_u64(11);
        b.iter(|| black_box(naive_batch(&sim, &weights, thread_rand, &mut rng, BATCH)));
    });
    g.bench_function("batch_reused_state_500", |b| {
        let mut rng = SmallRng::seed_from_u64(11);
        b.iter(|| {
            black_box(amortised_batch(
                &sim,
                &weights,
                thread_rand,
                &mut rng,
                BATCH,
            ))
        });
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_naive_vs_batch
}

/// Measures runs/sec over a fixed iteration count (outside criterion, so
/// the two numbers are directly comparable) and writes the JSON summary.
fn write_bench_json() {
    let (sim, weights, thread_rand) = setup();
    let n = 30_000usize;

    let mut rng = SmallRng::seed_from_u64(99);
    let t0 = Instant::now();
    black_box(naive_batch(&sim, &weights, thread_rand, &mut rng, n));
    let naive_rps = n as f64 / t0.elapsed().as_secs_f64();

    let mut rng = SmallRng::seed_from_u64(99);
    let t0 = Instant::now();
    black_box(amortised_batch(&sim, &weights, thread_rand, &mut rng, n));
    let batch_rps = n as f64 / t0.elapsed().as_secs_f64();

    let json = format!(
        "{{\n  \"bench\": \"campaign\",\n  \"test\": \"mp\",\n  \"chip\": \"titan\",\n  \"iterations\": {n},\n  \"naive_runs_per_sec\": {naive_rps:.0},\n  \"batch_runs_per_sec\": {batch_rps:.0},\n  \"batch_speedup\": {:.3}\n}}\n",
        batch_rps / naive_rps
    );
    // CARGO_MANIFEST_DIR is crates/bench; the summary lives at the repo
    // root regardless of the invoking working directory.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
    std::fs::write(path, &json).expect("write BENCH_campaign.json");
    println!("wrote {path}:\n{json}");
}

fn main() {
    benches();
    // `cargo test --benches` smoke-runs with `--test`: skip the timing
    // sweep there, it would measure a debug build.
    if !std::env::args().any(|a| a == "--test") {
        write_bench_json();
    }
}
