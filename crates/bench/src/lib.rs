//! Shared machinery for the experiment binaries in `src/bin/`: the paper's
//! reference numbers, a tiny CLI, row runners and side-by-side printing.
//!
//! Every binary regenerates one table or figure of the paper. Absolute
//! counts come from the simulator's calibrated chip profiles; the claims
//! to check are the *shapes* — which chips exhibit a behaviour, which
//! fences suppress it, and rough orders of magnitude (DESIGN.md §3).

pub mod cli;
pub mod naive;
pub mod paper;
pub mod run;

pub use cli::BenchArgs;
pub use run::{obs_cell, obs_row, print_experiment, Cell};
