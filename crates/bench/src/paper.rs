//! Reference `obs/100k` numbers transcribed from the paper, used to print
//! paper-vs-measured tables. `None` marks the paper's `n/a` cells.

/// Chip column order of the paper's figures:
/// GTX5, TesC, GTX6, Titan, GTX7, HD6570, HD7970.
pub const CHIP_COLUMNS: [&str; 7] = ["GTX5", "TesC", "GTX6", "Titan", "GTX7", "HD6570", "HD7970"];

/// Nvidia-only column order (Figs. 3–5).
pub const NVIDIA_COLUMNS: [&str; 5] = ["GTX5", "TesC", "GTX6", "Titan", "GTX7"];

/// Fig. 1 — coRR.
pub const FIG1_CORR: [Option<u64>; 7] = [
    Some(11642),
    Some(8879),
    Some(9599),
    Some(9787),
    Some(0),
    Some(0),
    Some(0),
];

/// Fig. 3 — mp-L1, rows (fence, Nvidia counts).
pub const FIG3_MP_L1: [(&str, [u64; 5]); 4] = [
    ("no-op", [4979, 10581, 3635, 6011, 3]),
    ("membar.cta", [0, 308, 14, 1696, 0]),
    ("membar.gl", [0, 187, 0, 0, 0]),
    ("membar.sys", [0, 162, 0, 0, 0]),
];

/// Fig. 4 — coRR-L2-L1, rows (fence, Nvidia counts).
pub const FIG4_CORR_L2_L1: [(&str, [u64; 5]); 4] = [
    ("no-op", [2556, 2982, 2, 141, 0]),
    ("membar.cta", [1934, 2180, 0, 0, 0]),
    ("membar.gl", [0, 1496, 0, 0, 0]),
    ("membar.sys", [0, 1428, 0, 0, 0]),
];

/// Fig. 5 — mp-volatile (Nvidia).
pub const FIG5_MP_VOLATILE: [u64; 5] = [6301, 4977, 2753, 2188, 0];

/// Fig. 7 — dlb-mp.
pub const FIG7_DLB_MP: [Option<u64>; 7] = [
    Some(0),
    Some(4),
    Some(36),
    Some(65),
    Some(0),
    Some(0),
    Some(0),
];

/// Fig. 8 — dlb-lb (`None` = the paper's "n/a": the TeraScale 2 compiler
/// reorders the load and the CAS).
pub const FIG8_DLB_LB: [Option<u64>; 7] = [
    Some(0),
    Some(750),
    Some(399),
    Some(2292),
    Some(0),
    None,
    Some(13591),
];

/// Fig. 9 — cas-sl.
pub const FIG9_CAS_SL: [Option<u64>; 7] = [
    Some(0),
    Some(47),
    Some(43),
    Some(512),
    Some(0),
    Some(508),
    Some(748),
];

/// Fig. 11 — sl-future (AMD untestable: the OpenCL compiler auto-places
/// fences, Sec. 3.2).
pub const FIG11_SL_FUTURE: [Option<u64>; 7] =
    [Some(0), Some(99), Some(41), Some(58), Some(0), None, None];

/// Sec. 3.1.2 — OpenCL mp on AMD without fences.
pub const AMD_MP_UNFENCED: [(&str, u64); 2] = [("HD6570", 9327), ("HD7970", 2956)];

/// Sec. 6 — inter-CTA `lb+membar.ctas`, observed although the operational
/// model forbids it.
pub const SEC6_LB_CTAS: [(&str, u64); 2] = [("Titan", 586), ("GTX6", 19)];

/// Tab. 6 — GTX Titan rows (16 incantation columns each).
pub const TAB6_TITAN: [(&str, [u64; 16]); 4] = [
    (
        "coRR (intra-CTA)",
        [
            0, 0, 0, 0, 0, 1235, 0, 9774, 161, 118, 847, 362, 632, 3384, 3993, 9985,
        ],
    ),
    (
        "lb (inter-CTA)",
        [
            0, 0, 0, 0, 0, 0, 0, 0, 181, 1067, 1555, 2247, 4, 37, 83, 486,
        ],
    ),
    (
        "mp (inter-CTA)",
        [
            0, 0, 0, 0, 0, 621, 0, 2921, 315, 1128, 2372, 4347, 7, 94, 442, 2888,
        ],
    ),
    (
        "sb (inter-CTA)",
        [
            0, 0, 0, 0, 0, 0, 0, 0, 462, 1403, 3308, 6673, 3, 50, 88, 749,
        ],
    ),
];

/// Tab. 6 — Radeon HD 7970 rows.
pub const TAB6_HD7970: [(&str, [u64; 16]); 4] = [
    ("coRR (intra-CTA)", [0; 16]),
    (
        "lb (inter-CTA)",
        [
            10959, 8979, 31895, 29092, 13510, 12729, 29779, 26737, 5094, 9360, 37624, 38664, 5321,
            10054, 32796, 34196,
        ],
    ),
    (
        "mp (inter-CTA)",
        [
            212, 31, 243, 158, 277, 46, 318, 247, 473, 217, 1289, 563, 611, 339, 2542, 1628,
        ],
    ),
    (
        "sb (inter-CTA)",
        [0, 0, 0, 0, 2, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0],
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_data_shapes() {
        assert_eq!(CHIP_COLUMNS.len(), FIG1_CORR.len());
        assert_eq!(FIG3_MP_L1.len(), 4);
        for (_, row) in TAB6_TITAN.iter().chain(TAB6_HD7970.iter()) {
            assert_eq!(row.len(), 16);
        }
        // Known headline numbers.
        assert_eq!(FIG1_CORR[0], Some(11642));
        assert_eq!(FIG8_DLB_LB[5], None);
        assert_eq!(TAB6_TITAN[3].1[11], 6673);
    }
}
