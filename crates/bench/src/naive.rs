//! The naive-sampler ablation baseline (DESIGN.md §5.1).
//!
//! Instead of the operational machine, sample each observed register
//! uniformly from the values any write (or the initial state) could give
//! its location. This "hardware" is what you would get from a simulator
//! without a memory-system mechanism — the ablation benches show it
//! immediately violates SC-per-location and the PTX model, which is why
//! the operational machine exists.

use rand::rngs::SmallRng;
use rand::Rng;
use weakgpu_litmus::{FinalExpr, Instr, LitmusTest, Operand, Outcome};

/// Samples one outcome by drawing every observed value uniformly from the
/// location's statically-written value set (plus the initial value).
pub fn naive_outcome(test: &LitmusTest, rng: &mut SmallRng) -> Outcome {
    let mut outcome = Outcome::new();
    for expr in test.observed() {
        let domain: Vec<i64> = match &expr {
            FinalExpr::Mem(loc) => value_domain(test, loc),
            FinalExpr::Reg(tid, reg) => {
                // Values any load into this register could see: union over
                // the locations the thread loads into it.
                let mut d = vec![0];
                for instr in &test.threads()[*tid] {
                    if let Instr::Ld { dst, addr, .. } = instr.unguarded() {
                        if dst == reg {
                            if let Operand::Sym(loc) = addr {
                                d.extend(value_domain(test, loc));
                            }
                        }
                    }
                }
                d.sort_unstable();
                d.dedup();
                d
            }
        };
        let v = domain[rng.random_range(0..domain.len())];
        outcome.set(expr, v);
    }
    outcome
}

fn value_domain(test: &LitmusTest, loc: &weakgpu_litmus::Loc) -> Vec<i64> {
    let mut d = vec![test.memory().init(loc).unwrap_or(0)];
    for thread in test.threads() {
        for instr in thread {
            if let Instr::St { addr, src, .. } = instr.unguarded() {
                if let (Operand::Sym(l), Operand::Imm(v)) = (addr, src) {
                    if l == loc {
                        d.push(*v);
                    }
                }
            }
        }
    }
    d.sort_unstable();
    d.dedup();
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use weakgpu_litmus::corpus;

    #[test]
    fn naive_sampler_produces_model_violations() {
        use weakgpu_axiom::enumerate::model_outcomes;
        use weakgpu_models::ptx_model;
        // The coRR test observes r1, r2 from loads of x ∈ {0, 1}: the
        // naive sampler hits every combination, including outcomes no
        // coherent machine can produce for *other* tests; here even the
        // PTX model allows all four, so use sl-future where r0=1 ∧ r2=1
        // (lock never acquired but future value read) is unreachable.
        let test = corpus::sl_future(true);
        let verdict = model_outcomes(&test, &ptx_model(), &Default::default()).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut violations = 0;
        for _ in 0..500 {
            let o = naive_outcome(&test, &mut rng);
            if !verdict.allowed_outcomes.contains(&o) {
                violations += 1;
            }
        }
        assert!(
            violations > 0,
            "the naive sampler must produce model-forbidden outcomes"
        );
    }

    #[test]
    fn domains_cover_writes_and_init() {
        let test = corpus::cas_sl(false);
        let d = value_domain(&test, &"x".into());
        assert_eq!(d, vec![0, 1]);
        let m = value_domain(&test, &"m".into());
        assert!(m.contains(&1)); // init
    }
}
