//! A tiny argument parser shared by the experiment binaries.

/// Usage text shared by `--help` and parse failures. Documents every
/// accepted flag, including aliases.
pub const USAGE: &str = "usage: [--iterations N | -n N] [--seed N] [--parallelism N] [--full]

options:
  --iterations N, -n N   runs per cell (default 100000, the paper's count)
  --seed N               base RNG seed (default 24301); for a fixed seed
                         results are bit-identical on any machine
  --parallelism N        worker threads (default: all cores; affects
                         wall-clock time only, never results)
  --full                 escalate to the full/paper-scale variant where an
                         experiment has one (e.g. the validation sweep)
  --help, -h             print this help on stdout and exit 0";

/// Common options: `--iterations N` (alias `-n N`), `--seed N`,
/// `--parallelism N`, `--full`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BenchArgs {
    /// Runs per cell (default 100 000, the paper's count).
    pub iterations: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads (`None` = all available cores).
    pub parallelism: Option<usize>,
    /// Escalate to the full/paper-scale variant where an experiment has
    /// one (e.g. the validation sweep).
    pub full: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            iterations: 100_000,
            seed: 0x5eed,
            parallelism: None,
            full: false,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args`, exiting with usage on malformed input.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list.
    ///
    /// # Panics
    ///
    /// Panics on unknown flags or malformed numbers (acceptable for
    /// developer-facing binaries).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--iterations" | "-n" => {
                    let v = it.next().expect("--iterations needs a value");
                    out.iterations = v.parse().expect("--iterations must be a number");
                }
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    out.seed = v.parse().expect("--seed must be a number");
                }
                "--parallelism" => {
                    let v = it.next().expect("--parallelism needs a value");
                    out.parallelism = Some(v.parse().expect("--parallelism must be a number"));
                }
                "--full" => out.full = true,
                "--help" | "-h" => {
                    // Help goes to stdout (it is the requested output),
                    // with exit status 0.
                    println!("{USAGE}");
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?}\n{USAGE}"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = BenchArgs::parse_from(Vec::new());
        assert_eq!(a.iterations, 100_000);
        assert_eq!(a.parallelism, None);
        assert!(!a.full);
    }

    #[test]
    fn parses_flags() {
        let a = BenchArgs::parse_from(
            [
                "--iterations",
                "5000",
                "--seed",
                "9",
                "--parallelism",
                "2",
                "--full",
            ]
            .map(String::from),
        );
        assert_eq!(a.iterations, 5000);
        assert_eq!(a.seed, 9);
        assert_eq!(a.parallelism, Some(2));
        assert!(a.full);
    }

    #[test]
    fn n_is_an_iterations_alias() {
        let a = BenchArgs::parse_from(["-n", "777"].map(String::from));
        assert_eq!(a.iterations, 777);
    }

    #[test]
    fn usage_documents_every_flag() {
        for flag in [
            "--iterations",
            "-n",
            "--seed",
            "--parallelism",
            "--full",
            "--help",
            "-h",
        ] {
            assert!(USAGE.contains(flag), "usage text missing {flag}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown() {
        let _ = BenchArgs::parse_from(["--bogus".to_string()]);
    }
}
