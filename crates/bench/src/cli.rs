//! A tiny argument parser shared by the experiment binaries.

/// Common options: `--iterations N`, `--seed N`, `--full`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BenchArgs {
    /// Runs per cell (default 100 000, the paper's count).
    pub iterations: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Escalate to the full/paper-scale variant where an experiment has
    /// one (e.g. the validation sweep).
    pub full: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            iterations: 100_000,
            seed: 0x5eed,
            full: false,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args`, exiting with usage on malformed input.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list.
    ///
    /// # Panics
    ///
    /// Panics on unknown flags or malformed numbers (acceptable for
    /// developer-facing binaries).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--iterations" | "-n" => {
                    let v = it.next().expect("--iterations needs a value");
                    out.iterations = v.parse().expect("--iterations must be a number");
                }
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    out.seed = v.parse().expect("--seed must be a number");
                }
                "--full" => out.full = true,
                "--help" | "-h" => {
                    eprintln!("usage: [--iterations N] [--seed N] [--full]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?}"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = BenchArgs::parse_from(Vec::new());
        assert_eq!(a.iterations, 100_000);
        assert!(!a.full);
    }

    #[test]
    fn parses_flags() {
        let a = BenchArgs::parse_from(
            ["--iterations", "5000", "--seed", "9", "--full"]
                .map(String::from),
        );
        assert_eq!(a.iterations, 5000);
        assert_eq!(a.seed, 9);
        assert!(a.full);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown() {
        let _ = BenchArgs::parse_from(["--bogus".to_string()]);
    }
}
