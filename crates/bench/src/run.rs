//! Row runners and paper-vs-measured printing, built on the harness's
//! campaign engine: a row's cells share one worker pool and compiled
//! simulators instead of spawning a thread scope per cell.

use weakgpu_harness::campaign::{run_campaign, CampaignConfig, CellSpec};
use weakgpu_harness::report::ObsTable;
use weakgpu_harness::runner::{run_test, RunConfig};
use weakgpu_litmus::LitmusTest;
use weakgpu_sim::chip::{Chip, Incantations};

use crate::cli::BenchArgs;

impl BenchArgs {
    /// The campaign config these bench args resolve to.
    pub fn campaign_config(&self) -> CampaignConfig {
        CampaignConfig {
            parallelism: self.parallelism,
        }
    }
}

/// A table cell: a count or `n/a`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cell {
    /// An observation count (per 100k).
    Obs(u64),
    /// Not applicable (compiler invalidates the test).
    Na,
}

impl Cell {
    /// Renders the cell.
    pub fn render(self) -> String {
        match self {
            Cell::Obs(n) => n.to_string(),
            Cell::Na => "n/a".to_owned(),
        }
    }
}

impl From<Option<u64>> for Cell {
    fn from(v: Option<u64>) -> Self {
        match v {
            Some(n) => Cell::Obs(n),
            None => Cell::Na,
        }
    }
}

/// Runs `test` on one chip and returns the witness count normalised to
/// 100k runs.
///
/// # Panics
///
/// Panics on harness errors — experiment binaries treat those as fatal.
pub fn obs_cell(test: &LitmusTest, chip: Chip, inc: Incantations, args: &BenchArgs) -> u64 {
    let cfg = RunConfig {
        iterations: args.iterations,
        incantations: inc,
        seed: args.seed,
        parallelism: args.parallelism,
    };
    run_test(test, chip, &cfg)
        .unwrap_or_else(|e| panic!("{} on {chip}: {e}", test.name()))
        .obs_per_100k()
}

/// Runs `test` across `chips` with per-chip incantations chosen by the
/// test's placement (best inter-CTA column for inter-CTA tests, all-on for
/// intra-CTA, as in the paper). The whole row runs as one campaign —
/// cell results are identical to per-cell [`obs_cell`] calls.
pub fn obs_row(test: &LitmusTest, chips: &[Chip], args: &BenchArgs) -> Vec<u64> {
    let inc = default_incantations(test);
    let cells: Vec<CellSpec> = chips
        .iter()
        .map(|&chip| {
            CellSpec::new(test.clone(), chip)
                .incantations(inc)
                .iterations(args.iterations)
                .seed(args.seed)
        })
        .collect();
    run_campaign(&cells, &args.campaign_config())
        .unwrap_or_else(|e| panic!("{}: {e}", test.name()))
        .iter()
        .map(weakgpu_harness::TestReport::obs_per_100k)
        .collect()
}

/// The paper's "most effective incantations" per placement (the harness
/// helper, re-exported for the experiment binaries).
pub fn default_incantations(test: &LitmusTest) -> Incantations {
    weakgpu_harness::default_incantations(test)
}

/// Prints one experiment: for every row, the paper's reference counts and
/// the measured counts side by side.
pub fn print_experiment(title: &str, columns: &[&str], rows: Vec<(String, Vec<Cell>, Vec<Cell>)>) {
    println!("== {title} ==");
    let mut table = ObsTable::new("obs/100k", columns.iter().map(|s| (*s).to_owned()));
    for (label, paper, measured) in rows {
        table.row_text(
            format!("{label} (paper)"),
            paper.into_iter().map(Cell::render),
        );
        table.row_text(
            format!("{label} (sim)"),
            measured.into_iter().map(Cell::render),
        );
    }
    println!("{table}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_litmus::corpus;

    #[test]
    fn obs_cell_runs() {
        let args = BenchArgs {
            iterations: 500,
            ..BenchArgs::default()
        };
        let v = obs_cell(&corpus::corr(), Chip::Gtx280, Incantations::all_on(), &args);
        assert_eq!(v, 0);
    }

    #[test]
    fn default_incantations_by_placement() {
        assert_eq!(
            default_incantations(&corpus::corr()),
            Incantations::all_on()
        );
        assert_eq!(
            default_incantations(&corpus::cas_sl(false)),
            Incantations::best_inter_cta()
        );
    }

    #[test]
    fn obs_row_matches_per_cell_runs() {
        // The campaign-backed row must reproduce exactly what running
        // each cell alone produces.
        let args = BenchArgs {
            iterations: 1_000,
            ..BenchArgs::default()
        };
        let test = corpus::mp(weakgpu_litmus::ThreadScope::InterCta, None);
        let chips = [Chip::GtxTitan, Chip::Gtx280];
        let row = obs_row(&test, &chips, &args);
        let inc = default_incantations(&test);
        let solo: Vec<u64> = chips
            .iter()
            .map(|&c| obs_cell(&test, c, inc, &args))
            .collect();
        assert_eq!(row, solo);
    }

    #[test]
    fn cells_render() {
        assert_eq!(Cell::Obs(42).render(), "42");
        assert_eq!(Cell::Na.render(), "n/a");
        assert_eq!(Cell::from(None), Cell::Na);
    }
}
