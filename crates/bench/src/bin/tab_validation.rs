//! Sec. 5.4 — validation of the PTX model: run a diy-generated test
//! family on the Nvidia chip profiles and verify that every observed
//! behaviour is allowed by the model ("experimentally sound w.r.t. our
//! 10 930 tests").
//!
//! Default: the small family (hundreds of tests) at reduced iteration
//! counts. `--full` escalates to the paper-scale family (≈ 17k tests).
//!
//! This binary is a thin front end over the `weakgpu_harness::sweep`
//! subsystem — the same engine behind `weakgpu sweep` and the CI shard
//! matrix: one campaign over all (test, chip) cells, per-cell soundness
//! against the PTX model with verdicts cached by test shape, and a
//! machine-checkable verdict (exit status 1 on any forbidden
//! observation).

use std::sync::atomic::{AtomicUsize, Ordering};

use weakgpu_bench::BenchArgs;
use weakgpu_diy::{generate, GenConfig};
use weakgpu_harness::sweep::{run_sweep_with, SweepConfig};
use weakgpu_sim::chip::Chip;

fn main() {
    let args = BenchArgs::parse();
    let family = if args.full { "paper" } else { "small" };
    let tests = generate(&GenConfig::named(family).expect("built-in family"));
    let iterations = if args.full {
        args.iterations
    } else {
        args.iterations.min(2_000)
    };
    let cfg = SweepConfig {
        family: family.to_owned(),
        shard: None,
        chips: Chip::NVIDIA_TABLED.to_vec(),
        iterations,
        seed: args.seed,
        parallelism: args.parallelism,
        pruning: false,
        batching: false,
        incremental: false,
        cache_file: None,
        cache_readonly: false,
    };
    let total = tests.len() * cfg.chips.len();
    println!(
        "== Sec. 5.4: model validation — {} generated tests × {} runs × {} chips ==",
        tests.len(),
        iterations,
        cfg.chips.len()
    );

    let done = AtomicUsize::new(0);
    let report = run_sweep_with(&tests, &cfg, |_| {
        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(2_000) {
            println!("  … {n}/{total} cells run");
        }
    })
    .unwrap_or_else(|e| panic!("sweep failed: {e}"));

    let unsound_tests: std::collections::BTreeSet<&str> =
        report.unsound.iter().map(|u| u.test.as_str()).collect();
    println!(
        "\nsound: {}/{} tests ({} total runs; verdict cache {} hits / {} misses)",
        report.tests_run - unsound_tests.len() as u64,
        report.tests_run,
        report.total_runs,
        report.cache.hits,
        report.cache.misses,
    );
    if report.is_sound() {
        println!("RESULT: the PTX model is experimentally sound w.r.t. this family");
    } else {
        println!(
            "RESULT: UNSOUND — {} cells with forbidden observations:",
            report.unsound_cells
        );
        for u in report.unsound.iter().take(20) {
            println!("  {} on {}: {:?}", u.test, u.chip, u.outcomes);
        }
        std::process::exit(1);
    }
}
