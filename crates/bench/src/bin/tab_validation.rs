//! Sec. 5.4 — validation of the PTX model: run a diy-generated test
//! family on the Nvidia chip profiles and verify that every observed
//! behaviour is allowed by the model ("experimentally sound w.r.t. our
//! 10 930 tests").
//!
//! Default: the small family (hundreds of tests) at reduced iteration
//! counts. `--full` escalates to the paper-scale family (≈ 18k tests,
//! hours of CPU time).

use weakgpu_axiom::enumerate::EnumConfig;
use weakgpu_bench::BenchArgs;
use weakgpu_diy::{generate, GenConfig};
use weakgpu_harness::runner::{run_test, RunConfig};
use weakgpu_harness::soundness::check_soundness;
use weakgpu_models::ptx_model;
use weakgpu_sim::chip::{Chip, Incantations};

fn main() {
    let args = BenchArgs::parse();
    let gen_cfg = if args.full {
        GenConfig::paper()
    } else {
        GenConfig::small()
    };
    let tests = generate(&gen_cfg);
    let iterations = if args.full {
        args.iterations
    } else {
        args.iterations.min(2_000)
    };
    println!(
        "== Sec. 5.4: model validation — {} generated tests × {} runs × {} chips ==",
        tests.len(),
        iterations,
        Chip::NVIDIA_TABLED.len()
    );

    let model = ptx_model();
    let enum_cfg = EnumConfig::default();
    let mut sound = 0usize;
    let mut unsound = Vec::new();
    let mut observations = 0u64;
    for (i, test) in tests.iter().enumerate() {
        let mut merged = weakgpu_harness::Histogram::new();
        for &chip in &Chip::NVIDIA_TABLED {
            let inc = match test.thread_scope() {
                Some(weakgpu_litmus::ThreadScope::InterCta) => Incantations::best_inter_cta(),
                _ => Incantations::all_on(),
            };
            let cfg = RunConfig {
                iterations,
                incantations: inc,
                seed: args.seed ^ (i as u64),
                parallelism: None,
            };
            let report = run_test(test, chip, &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
            observations += report.histogram.total();
            merged.merge(report.histogram);
        }
        match check_soundness(test, &merged, &model, &enum_cfg) {
            Ok(r) if r.is_sound() => sound += 1,
            Ok(r) => unsound.push((test.name().to_owned(), r.violations)),
            Err(e) => panic!("{}: enumeration failed: {e}", test.name()),
        }
        if (i + 1) % 100 == 0 {
            println!("  … {}/{} tests checked", i + 1, tests.len());
        }
    }

    println!(
        "\nsound: {sound}/{} tests ({observations} total runs)",
        tests.len()
    );
    if unsound.is_empty() {
        println!("RESULT: the PTX model is experimentally sound w.r.t. this family");
    } else {
        println!("RESULT: UNSOUND — {} tests with forbidden observations:", unsound.len());
        for (name, violations) in unsound.iter().take(20) {
            println!("  {name}: {violations:?}");
        }
        std::process::exit(1);
    }
}
