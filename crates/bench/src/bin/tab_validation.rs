//! Sec. 5.4 — validation of the PTX model: run a diy-generated test
//! family on the Nvidia chip profiles and verify that every observed
//! behaviour is allowed by the model ("experimentally sound w.r.t. our
//! 10 930 tests").
//!
//! Default: the small family (hundreds of tests) at reduced iteration
//! counts. `--full` escalates to the paper-scale family (≈ 18k tests,
//! hours of CPU time).
//!
//! The whole sweep runs as ONE campaign: every (test, chip) cell shares a
//! single worker pool and compiled-simulator cache, with streaming
//! progress as cells complete — instead of a fresh thread scope per cell.

use std::sync::atomic::{AtomicUsize, Ordering};

use weakgpu_axiom::enumerate::EnumConfig;
use weakgpu_bench::BenchArgs;
use weakgpu_harness::campaign::{run_campaign_with, CellSpec};
use weakgpu_harness::soundness::check_soundness;
use weakgpu_models::ptx_model;
use weakgpu_sim::chip::Chip;

fn main() {
    let args = BenchArgs::parse();
    let gen_cfg = if args.full {
        weakgpu_diy::GenConfig::paper()
    } else {
        weakgpu_diy::GenConfig::small()
    };
    let tests = weakgpu_diy::generate(&gen_cfg);
    let iterations = if args.full {
        args.iterations
    } else {
        args.iterations.min(2_000)
    };
    println!(
        "== Sec. 5.4: model validation — {} generated tests × {} runs × {} chips ==",
        tests.len(),
        iterations,
        Chip::NVIDIA_TABLED.len()
    );

    // One cell per (test, chip), test-major; per-test seeds match the
    // historical sweep (base seed XOR test index).
    let mut cells = Vec::with_capacity(tests.len() * Chip::NVIDIA_TABLED.len());
    for (i, test) in tests.iter().enumerate() {
        let inc = weakgpu_harness::default_incantations(test);
        for &chip in &Chip::NVIDIA_TABLED {
            cells.push(
                CellSpec::new(test.clone(), chip)
                    .incantations(inc)
                    .iterations(iterations)
                    .seed(args.seed ^ (i as u64)),
            );
        }
    }

    let total = cells.len();
    let done = AtomicUsize::new(0);
    let reports = run_campaign_with(&cells, &args.campaign_config(), |_, _| {
        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(300) {
            println!("  … {n}/{total} cells run");
        }
    })
    .unwrap_or_else(|e| panic!("campaign failed: {e}"));

    let model = ptx_model();
    let enum_cfg = EnumConfig::default();
    let chips = Chip::NVIDIA_TABLED.len();
    let mut sound = 0usize;
    let mut unsound = Vec::new();
    let mut observations = 0u64;
    for (i, test) in tests.iter().enumerate() {
        // Merge the test's per-chip histograms (cells are test-major).
        let mut merged = weakgpu_harness::Histogram::new();
        for report in &reports[i * chips..(i + 1) * chips] {
            observations += report.histogram.total();
            merged.merge(report.histogram.clone());
        }
        match check_soundness(test, &merged, &model, &enum_cfg) {
            Ok(r) if r.is_sound() => sound += 1,
            Ok(r) => unsound.push((test.name().to_owned(), r.violations)),
            Err(e) => panic!("{}: enumeration failed: {e}", test.name()),
        }
        if (i + 1) % 100 == 0 {
            println!("  … {}/{} tests checked", i + 1, tests.len());
        }
    }

    println!(
        "\nsound: {sound}/{} tests ({observations} total runs)",
        tests.len()
    );
    if unsound.is_empty() {
        println!("RESULT: the PTX model is experimentally sound w.r.t. this family");
    } else {
        println!("RESULT: UNSOUND — {} tests with forbidden observations:", unsound.len());
        for (name, violations) in unsound.iter().take(20) {
            println!("  {name}: {violations:?}");
        }
        std::process::exit(1);
    }
}
