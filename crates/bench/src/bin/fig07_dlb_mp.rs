//! Fig. 7 — `dlb-mp`: the message-passing bug distilled from the
//! Cederman–Tsigas work-stealing deque. A steal can observe the
//! incremented `tail` yet read a stale task — the deque loses a task.
//!
//! Shape to reproduce: observed on Fermi (TesC) and Kepler (GTX6, Titan)
//! at tens per 100k; absent on GTX5, Maxwell and AMD; the `(+)` fences
//! eliminate it everywhere.

use weakgpu_bench::paper::{CHIP_COLUMNS, FIG7_DLB_MP};
use weakgpu_bench::{obs_row, print_experiment, BenchArgs, Cell};
use weakgpu_litmus::corpus;
use weakgpu_sim::chip::Chip;

fn main() {
    let args = BenchArgs::parse();
    let mut rows = Vec::new();
    let unfenced = obs_row(&corpus::dlb_mp(false), &Chip::TABLED, &args);
    rows.push((
        "dlb-mp".to_owned(),
        FIG7_DLB_MP.iter().map(|&v| Cell::from(v)).collect(),
        unfenced.into_iter().map(Cell::Obs).collect(),
    ));
    let fenced = obs_row(&corpus::dlb_mp(true), &Chip::TABLED, &args);
    rows.push((
        "dlb-mp+membar.gls".to_owned(),
        vec![Cell::Obs(0); 7],
        fenced.into_iter().map(Cell::Obs).collect(),
    ));
    print_experiment(
        "Fig. 7: dlb-mp (inter-CTA) — deque loses a pushed task",
        &CHIP_COLUMNS,
        rows,
    );
}
