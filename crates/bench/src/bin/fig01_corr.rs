//! Fig. 1 — the `coRR` read-read coherence test across all chips.
//!
//! Shape to reproduce: Fermi and Kepler exhibit thousands of violations
//! per 100k; Maxwell and both AMD chips exhibit none.

use weakgpu_bench::paper::{CHIP_COLUMNS, FIG1_CORR};
use weakgpu_bench::{obs_row, print_experiment, BenchArgs, Cell};
use weakgpu_litmus::corpus;
use weakgpu_sim::chip::Chip;

fn main() {
    let args = BenchArgs::parse();
    let test = corpus::corr();
    let measured = obs_row(&test, &Chip::TABLED, &args);
    print_experiment(
        "Fig. 1: coRR (intra-CTA, global memory)",
        &CHIP_COLUMNS,
        vec![(
            "coRR".to_owned(),
            FIG1_CORR.iter().map(|&v| Cell::from(v)).collect(),
            measured.into_iter().map(Cell::Obs).collect(),
        )],
    );
}
