//! Ablation (DESIGN.md §5) — which of the PTX model's relaxations are
//! *forced* by hardware observations?
//!
//! Three variants of the model face the simulated-chip observations:
//!
//! * the full paper model (Figs. 15+16) — sound everywhere;
//! * the model without the load-load hazard — goes unsound on `coRR`,
//!   so excluding read-read pairs from SC-per-location is necessary;
//! * unscoped RMO / the operational baseline — goes unsound on the
//!   inter-CTA `lb+membar.ctas`, so the per-scope stratification is
//!   necessary (the paper's Sec. 6 argument).

use weakgpu_axiom::enumerate::EnumConfig;
use weakgpu_axiom::Model;
use weakgpu_bench::BenchArgs;
use weakgpu_harness::runner::{run_test, RunConfig};
use weakgpu_harness::soundness::check_soundness;
use weakgpu_litmus::{corpus, FenceScope, LitmusTest, ThreadScope};
use weakgpu_models::{operational_baseline, ptx_model, ptx_model_without_llh, rmo_model};
use weakgpu_sim::chip::{Chip, Incantations};

fn observations(test: &LitmusTest, args: &BenchArgs) -> weakgpu_harness::Histogram {
    let inc = match test.thread_scope() {
        Some(ThreadScope::InterCta) => Incantations::best_inter_cta(),
        _ => Incantations::all_on(),
    };
    let cfg = RunConfig {
        iterations: args.iterations.max(150_000),
        incantations: inc,
        seed: args.seed,
        parallelism: None,
    };
    run_test(test, Chip::GtxTitan, &cfg).unwrap().histogram
}

fn main() {
    let args = BenchArgs::parse();
    let witnesses: Vec<(&str, LitmusTest)> = vec![
        ("coRR (Fig. 1)", corpus::corr()),
        (
            "lb+membar.ctas (Sec. 6)",
            corpus::lb(ThreadScope::InterCta, Some(FenceScope::Cta)),
        ),
        ("mp unfenced", corpus::mp(ThreadScope::InterCta, None)),
    ];
    let models: Vec<Box<dyn Model>> = vec![
        Box::new(ptx_model()),
        Box::new(ptx_model_without_llh()),
        Box::new(rmo_model()),
        Box::new(operational_baseline()),
    ];

    println!("== Ablation: axiom necessity (observations on GTX Titan) ==\n");
    print!("{:<26}", "observation \\ model");
    for m in &models {
        print!("  {:>22}", m.name());
    }
    println!();
    let enum_cfg = EnumConfig::default();
    let mut necessity_shown = [false; 2];
    for (label, test) in &witnesses {
        let obs = observations(test, &args);
        print!("{label:<26}");
        for (mi, model) in models.iter().enumerate() {
            let verdict = check_soundness(test, &obs, model.as_ref(), &enum_cfg).unwrap();
            let cell = if verdict.is_sound() {
                "sound"
            } else {
                "UNSOUND"
            };
            print!("  {cell:>22}");
            if !verdict.is_sound() && mi == 1 && label.starts_with("coRR") {
                necessity_shown[0] = true;
            }
            if !verdict.is_sound() && mi >= 2 && label.starts_with("lb+") {
                necessity_shown[1] = true;
            }
        }
        println!();
    }
    println!(
        "\n=> the load-load hazard is necessary (coRR): {}",
        necessity_shown[0]
    );
    println!(
        "=> the scope stratification is necessary (lb+membar.ctas): {}",
        necessity_shown[1]
    );
    assert!(necessity_shown[0] && necessity_shown[1]);
}
