//! Runs every experiment binary's logic in sequence (at reduced default
//! iteration counts unless `--full`), regenerating all the paper's tables
//! and figures in one go. Used to produce `EXPERIMENTS.md`.
//!
//! All common flags (`--iterations`/`-n`, `--seed`, `--parallelism`,
//! `--full` — see `weakgpu_bench::cli::USAGE`) are forwarded verbatim to
//! every experiment; the underlying binaries run their cells on the
//! harness's campaign engine, so for a fixed seed the regenerated numbers
//! are bit-identical on any machine at any `--parallelism`.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("runs every experiment binary in sequence, forwarding flags:");
        println!("{}", weakgpu_bench::cli::USAGE);
        return;
    }
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin directory");
    let experiments = [
        "fig01_corr",
        "fig03_mp_l1",
        "fig04_corr_l2_l1",
        "fig05_mp_volatile",
        "fig07_dlb_mp",
        "fig08_dlb_lb",
        "fig09_cas_sl",
        "fig11_sl_future",
        "tab02_summary",
        "tab06_incantations",
        "sec6_opmodel",
        "fig13_deps",
        "ablation_naive",
        "ablation_axioms",
        "tab_validation",
    ];
    for name in experiments {
        let path = dir.join(name);
        println!("\n########## {name} ##########\n");
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            eprintln!("{name} FAILED with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll experiments completed.");
}
