//! Tab. 2 — the ten issues revealed by the study, re-established
//! end-to-end: each row names the affected component, the witnessing
//! experiment, and whether this reproduction confirms it.

use weakgpu_bench::run::default_incantations;
use weakgpu_bench::{obs_cell, BenchArgs};
use weakgpu_litmus::{corpus, FenceScope, ThreadScope};
use weakgpu_optcheck::deps::{dependency_survives, load_load_dep, DepScheme};
use weakgpu_optcheck::{amd_compile, AmdTarget, CompilerBug, CompilerConfig};
use weakgpu_sim::chip::Chip;

fn main() {
    let args = BenchArgs::parse();
    println!("== Tab. 2: summary of the issues revealed by the study ==\n");
    let mut confirmed = 0;
    let mut total = 0;
    let mut row = |affected: &str, test: &str, comment: &str, ok: bool| {
        total += 1;
        confirmed += ok as usize;
        println!(
            "{:<28} {:<18} {:<46} {}",
            affected,
            test,
            comment,
            if ok { "CONFIRMED" } else { "NOT REPRODUCED" }
        );
    };

    // 1. Fermi/Kepler: coRR.
    let corr = corpus::corr();
    let corr_obs: u64 = [
        Chip::Gtx540m,
        Chip::TeslaC2075,
        Chip::Gtx660,
        Chip::GtxTitan,
    ]
    .iter()
    .map(|&c| obs_cell(&corr, c, default_incantations(&corr), &args))
    .sum();
    row(
        "Fermi/Kepler architectures",
        "coRR",
        "sparks debate for CPUs",
        corr_obs > 0,
    );

    // 2. Fermi: mp-L1 / coRR-L2-L1 fence-immune.
    let mp_l1 = corpus::mp_l1(Some(FenceScope::Sys));
    let tesc = obs_cell(
        &mp_l1,
        Chip::TeslaC2075,
        default_incantations(&mp_l1),
        &args,
    );
    let l2l1 = corpus::corr_l2_l1(Some(FenceScope::Sys));
    let tesc2 = obs_cell(&l2l1, Chip::TeslaC2075, default_incantations(&l2l1), &args);
    row(
        "Fermi architecture",
        "mp-L1, coRR-L2-L1",
        "fences do not restore orderings",
        tesc > 0 && tesc2 > 0,
    );

    // 3. PTX ISA: volatile.
    let vol = corpus::mp_volatile();
    let vol_obs = obs_cell(&vol, Chip::Gtx540m, default_incantations(&vol), &args);
    row(
        "PTX ISA",
        "mp-volatile",
        "volatile documentation disagrees with testing",
        vol_obs > 0,
    );

    // 4. GPU Computing Gems deque.
    let dlb_lb = corpus::dlb_lb(false);
    let dlb_mp = corpus::dlb_mp(false);
    let deque = obs_cell(
        &dlb_lb,
        Chip::GtxTitan,
        default_incantations(&dlb_lb),
        &args,
    ) + obs_cell(
        &dlb_mp,
        Chip::GtxTitan,
        default_incantations(&dlb_mp),
        &args,
    );
    row(
        "GPU Computing Gems",
        "dlb-lb, dlb-mp",
        "fenceless deque allows items to be skipped",
        deque > 0,
    );

    // 5. CUDA by Example lock.
    let cas = corpus::cas_sl(false);
    let cas_obs = obs_cell(&cas, Chip::GtxTitan, default_incantations(&cas), &args);
    row(
        "CUDA by Example",
        "cas-sl",
        "fenceless lock allows stale values to be read",
        cas_obs > 0,
    );

    // 6. Stuart–Owens lock.
    let exch = corpus::exch_sl(false);
    let exch_obs = obs_cell(&exch, Chip::GtxTitan, default_incantations(&exch), &args);
    row(
        "Stuart-Owens lock",
        "exch-sl",
        "fenceless lock allows stale values to be read",
        exch_obs > 0,
    );

    // 7. He–Yu lock.
    let slf = corpus::sl_future(false);
    let slf_obs = obs_cell(&slf, Chip::TeslaC2075, default_incantations(&slf), &args);
    row(
        "He-Yu lock",
        "sl-future",
        "lock allows future values to be read",
        slf_obs > 0,
    );

    // 8. CUDA 5.5 compiler reorders volatile loads to the same address —
    // caught by optcheck on a volatile coRR (Sec. 4.4).
    let volatile_corr = {
        use weakgpu_litmus::build::*;
        use weakgpu_litmus::{LitmusTest, Predicate};
        LitmusTest::builder("coRR-volatile")
            .global("x", 0)
            .thread([st("x", 1)])
            .thread([ld_volatile("r1", "x"), ld_volatile("r2", "x")])
            .scope(ThreadScope::IntraCta)
            .exists(Predicate::reg_eq(1, "r1", 1).and(Predicate::reg_eq(1, "r2", 0)))
            .build()
            .expect("volatile coRR is valid")
    };
    let vol_report = weakgpu_optcheck::check_test(
        &volatile_corr,
        &CompilerConfig::o3().with_bug(CompilerBug::ReorderVolatileLoads),
    );
    row(
        "CUDA 5.5",
        "coRR",
        "compiler reorders volatile loads (optcheck)",
        !vol_report.consistent,
    );

    // 9. AMD GCN 1.0 compiler removes fences between loads.
    let fenced_mp = corpus::mp(ThreadScope::InterCta, Some(FenceScope::Gl));
    let (_, gcn) = amd_compile(&fenced_mp, AmdTarget::Gcn10);
    row(
        "AMD GCN 1.0",
        "mp",
        "compiler removes fences between loads",
        gcn.fences_removed > 0,
    );

    // 10. TeraScale 2 compiler reorders load and CAS.
    let (_, ts) = amd_compile(&dlb_lb, AmdTarget::TeraScale2);
    row(
        "AMD TeraScale 2",
        "dlb-lb",
        "compiler reorders load and CAS",
        ts.load_cas_reordered > 0,
    );

    // Bonus: Fig. 13a — ptxas -O3 erases xor-manufactured dependencies.
    let xor_dep = load_load_dep(DepScheme::Xor);
    row(
        "ptxas -O3 (Sec. 4.5)",
        "fig13a",
        "xor false dependencies optimised away",
        !dependency_survives(&xor_dep, &CompilerConfig::o3()),
    );

    println!("\n{confirmed}/{total} issues confirmed");
}
