//! Tab. 6 — the incantation ablation: observations for all 16
//! combinations of {memory stress, general bank conflicts, thread sync,
//! thread randomisation}, for coRR (intra-CTA) and lb/mp/sb (inter-CTA),
//! on the GTX Titan and the Radeon HD 7970.
//!
//! Shapes to reproduce (Sec. 4.3): on Nvidia, no inter-CTA weak behaviour
//! without memory stress; column 12 (stress+sync+rand) peaks for
//! inter-CTA tests; bank conflicts dampen them (col 12 vs 16); thread
//! randomisation boosts coRR dramatically (col 15 vs 16). On AMD, lb is
//! weak in every column, sb is vanishingly rare and bank-conflict-gated.

use weakgpu_bench::paper::{TAB6_HD7970, TAB6_TITAN};
use weakgpu_bench::{obs_cell, BenchArgs};
use weakgpu_harness::report::ObsTable;
use weakgpu_litmus::{corpus, LitmusTest, ThreadScope};
use weakgpu_sim::chip::{Chip, Incantations};

fn tests() -> Vec<(&'static str, LitmusTest)> {
    vec![
        ("coRR (intra-CTA)", corpus::corr()),
        ("lb (inter-CTA)", corpus::lb(ThreadScope::InterCta, None)),
        ("mp (inter-CTA)", corpus::mp(ThreadScope::InterCta, None)),
        ("sb (inter-CTA)", corpus::sb(ThreadScope::InterCta, None)),
    ]
}

fn run_chip(chip: Chip, paper: &[(&str, [u64; 16]); 4], args: &BenchArgs) {
    println!("== Tab. 6 ({chip}) ==");
    let columns: Vec<String> = (1..=16).map(|c| format!("c{c}")).collect();
    let mut table = ObsTable::new("obs/100k", columns);
    for ((label, test), (_, paper_row)) in tests().into_iter().zip(paper) {
        table.row(format!("{label} (paper)"), paper_row.iter().copied());
        let measured: Vec<u64> = Incantations::all_combinations()
            .into_iter()
            .map(|inc| obs_cell(&test, chip, inc, args))
            .collect();
        table.row(format!("{label} (sim)"), measured);
    }
    println!("{table}");
}

fn main() {
    let args = BenchArgs::parse();
    run_chip(Chip::GtxTitan, &TAB6_TITAN, &args);
    run_chip(Chip::RadeonHd7970, &TAB6_HD7970, &args);
}
