//! Sec. 6 — the operational model of Sorensen et al. is unsound: it
//! forbids inter-CTA `lb+membar.ctas`, which hardware exhibits (586/100k
//! on GTX Titan, 19/100k on GTX 660). The paper's axiomatic model allows
//! it.

use weakgpu_axiom::enumerate::model_outcomes;
use weakgpu_bench::paper::SEC6_LB_CTAS;
use weakgpu_bench::{obs_cell, BenchArgs};
use weakgpu_litmus::{corpus, FenceScope, ThreadScope};
use weakgpu_models::{operational_baseline, ptx_model};
use weakgpu_sim::chip::{Chip, Incantations};

fn main() {
    let args = BenchArgs::parse();
    let test = corpus::lb(ThreadScope::InterCta, Some(FenceScope::Cta));
    println!("== Sec. 6: inter-CTA lb+membar.ctas ==\n");

    let ptx = model_outcomes(&test, &ptx_model(), &Default::default()).unwrap();
    let op = model_outcomes(&test, &operational_baseline(), &Default::default()).unwrap();
    println!(
        "paper's axiomatic model: {}",
        if ptx.condition_witnessed {
            "ALLOWED"
        } else {
            "FORBIDDEN"
        }
    );
    println!(
        "operational baseline:    {}",
        if op.condition_witnessed {
            "ALLOWED"
        } else {
            "FORBIDDEN"
        }
    );

    println!("\nobservations (obs/100k):");
    for ((name, paper), chip) in SEC6_LB_CTAS.iter().zip([Chip::GtxTitan, Chip::Gtx660]) {
        let measured = obs_cell(&test, chip, Incantations::best_inter_cta(), &args);
        println!("  {name:<8} paper {paper:>6}   sim {measured:>6}");
    }
    println!(
        "\n=> the behaviour is observed, so the operational baseline is unsound \
         (paper model allows it: {})",
        ptx.condition_witnessed
    );
    assert!(ptx.condition_witnessed && !op.condition_witnessed);
}
