//! Fig. 13 — manufacturing dependencies that survive `ptxas -O3`.
//!
//! The xor-based false address dependency (Fig. 13a) is folded away at
//! `-O3`; the and-high-bit scheme (Fig. 13b) survives. The second half of
//! the experiment shows the semantic consequence on the model side: with
//! a surviving address dependency (plus a write-side fence), `mp` is
//! forbidden by the PTX model; without it, allowed.

use weakgpu_axiom::enumerate::model_outcomes;
use weakgpu_bench::BenchArgs;
use weakgpu_litmus::{corpus, FenceScope, ThreadScope};
use weakgpu_models::ptx_model;
use weakgpu_optcheck::deps::{dependency_survives, load_load_dep, DepScheme};
use weakgpu_optcheck::lower::CompilerConfig;

fn main() {
    let _args = BenchArgs::parse();
    println!("== Fig. 13: manufactured load-load address dependencies ==\n");
    println!("{:<24} {:>8} {:>8}", "scheme", "-O0", "-O3");
    for (name, scheme) in [
        ("xor (Fig. 13a)", DepScheme::Xor),
        ("and-high-bit (Fig. 13b)", DepScheme::AndHighBit),
    ] {
        let thread = load_load_dep(scheme);
        let o0 = dependency_survives(&thread, &CompilerConfig::o0());
        let o3 = dependency_survives(&thread, &CompilerConfig::o3());
        let s = |b: bool| if b { "kept" } else { "erased" };
        println!("{name:<24} {:>8} {:>8}", s(o0), s(o3));
    }

    println!("\nmodel-side effect of a surviving dependency (mp, inter-CTA):");
    let with_dep = corpus::mp_dep(ThreadScope::InterCta, FenceScope::Gl);
    let without = corpus::mp(ThreadScope::InterCta, None);
    let dep_verdict = model_outcomes(&with_dep, &ptx_model(), &Default::default()).unwrap();
    let plain_verdict = model_outcomes(&without, &ptx_model(), &Default::default()).unwrap();
    println!(
        "  mp + membar.gl (writes) + addr dep (reads): {}",
        if dep_verdict.condition_witnessed {
            "ALLOWED"
        } else {
            "FORBIDDEN"
        }
    );
    println!(
        "  mp, no ordering:                            {}",
        if plain_verdict.condition_witnessed {
            "ALLOWED"
        } else {
            "FORBIDDEN"
        }
    );
    assert!(!dep_verdict.condition_witnessed && plain_verdict.condition_witnessed);
}
