//! Fig. 11 — `sl-future`: the He–Yu transaction lock lets a critical
//! section read a value written by the *next* critical section, breaking
//! isolation.
//!
//! Shape to reproduce: future reads on Fermi (TesC) and Kepler; none on
//! GTX5/Maxwell; AMD untestable (the OpenCL compiler places fences
//! automatically); the corrected lock (fences at entry/exit, exchange
//! release) eliminates the behaviour.

use weakgpu_bench::paper::{CHIP_COLUMNS, FIG11_SL_FUTURE};
use weakgpu_bench::{obs_row, print_experiment, BenchArgs, Cell};
use weakgpu_litmus::corpus;
use weakgpu_sim::chip::Chip;

fn main() {
    let args = BenchArgs::parse();
    let mut rows = Vec::new();
    let buggy = obs_row(&corpus::sl_future(false), &Chip::TABLED, &args);
    rows.push((
        "sl-future".to_owned(),
        FIG11_SL_FUTURE.iter().map(|&v| Cell::from(v)).collect(),
        buggy
            .into_iter()
            .zip(CHIP_COLUMNS)
            .map(|(v, col)| {
                // The paper could not test AMD here.
                if col.starts_with("HD") {
                    Cell::Na
                } else {
                    Cell::Obs(v)
                }
            })
            .collect(),
    ));
    let fixed = obs_row(&corpus::sl_future(true), &Chip::TABLED, &args);
    rows.push((
        "sl-future (fixed)".to_owned(),
        vec![
            Cell::Obs(0),
            Cell::Obs(0),
            Cell::Obs(0),
            Cell::Obs(0),
            Cell::Obs(0),
            Cell::Na,
            Cell::Na,
        ],
        fixed.into_iter().map(Cell::Obs).collect(),
    ));
    print_experiment(
        "Fig. 11: sl-future (inter-CTA) — lock reads future values",
        &CHIP_COLUMNS,
        rows,
    );
}
