//! Fig. 4 — `coRR-L2-L1`: mixed cache operators, per fence scope.
//!
//! Shape to reproduce: on the Tesla C2075 no fence restores reliable L1
//! reads after an L2 read; on the GTX 540m only `membar.gl` does; Kepler
//! chips show a small unfenced residue; Maxwell shows nothing.

use weakgpu_bench::paper::{FIG4_CORR_L2_L1, NVIDIA_COLUMNS};
use weakgpu_bench::{obs_cell, print_experiment, BenchArgs, Cell};
use weakgpu_litmus::{corpus, FenceScope};
use weakgpu_sim::chip::{Chip, Incantations};

fn main() {
    let args = BenchArgs::parse();
    let inc = Incantations::all_on(); // intra-CTA test

    let mut rows = Vec::new();
    for (label, paper) in FIG4_CORR_L2_L1 {
        let fence = match label {
            "membar.cta" => Some(FenceScope::Cta),
            "membar.gl" => Some(FenceScope::Gl),
            "membar.sys" => Some(FenceScope::Sys),
            _ => None,
        };
        let test = corpus::corr_l2_l1(fence);
        let measured: Vec<Cell> = Chip::NVIDIA_TABLED
            .iter()
            .map(|&c| Cell::Obs(obs_cell(&test, c, inc, &args)))
            .collect();
        rows.push((
            label.to_owned(),
            paper.iter().map(|&v| Cell::Obs(v)).collect(),
            measured,
        ));
    }
    print_experiment(
        "Fig. 4: coRR-L2-L1 (intra-CTA, .cg then .ca load) per fence",
        &NVIDIA_COLUMNS,
        rows,
    );
}
