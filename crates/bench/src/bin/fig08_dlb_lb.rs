//! Fig. 8 — `dlb-lb`: the load-buffering bug in the Cederman–Tsigas
//! deque. A steal reads a task pushed *after* the pop that emptied the
//! deque.
//!
//! Shape to reproduce: observed on Fermi/Kepler and massively on GCN 1.0;
//! the HD6570 column is `n/a` because the TeraScale 2 OpenCL compiler
//! reorders the load and the CAS (detected here by `optcheck`/the AMD
//! compile report); the fences forbid it everywhere.

use weakgpu_bench::paper::{CHIP_COLUMNS, FIG8_DLB_LB};
use weakgpu_bench::run::default_incantations;
use weakgpu_bench::{obs_cell, print_experiment, BenchArgs, Cell};
use weakgpu_litmus::corpus;
use weakgpu_optcheck::{amd_compile, AmdTarget};
use weakgpu_sim::chip::{Chip, Vendor};

fn main() {
    let args = BenchArgs::parse();
    let mut rows = Vec::new();
    for (label, fenced) in [("dlb-lb", false), ("dlb-lb+membar.gls", true)] {
        let test = corpus::dlb_lb(fenced);
        let inc = default_incantations(&test);
        let measured: Vec<Cell> = Chip::TABLED
            .iter()
            .map(|&chip| {
                if chip.profile().vendor == Vendor::Amd {
                    let target = if chip == Chip::RadeonHd6570 {
                        AmdTarget::TeraScale2
                    } else {
                        AmdTarget::Gcn10
                    };
                    let (compiled, report) = amd_compile(&test, target);
                    if !report.test_is_meaningful() {
                        // The compiler reordered the load and the CAS: the
                        // binary no longer measures dlb-lb.
                        return Cell::Na;
                    }
                    Cell::Obs(obs_cell(&compiled, chip, inc, &args))
                } else {
                    Cell::Obs(obs_cell(&test, chip, inc, &args))
                }
            })
            .collect();
        let paper: Vec<Cell> = if fenced {
            vec![
                Cell::Obs(0),
                Cell::Obs(0),
                Cell::Obs(0),
                Cell::Obs(0),
                Cell::Obs(0),
                Cell::Na,
                Cell::Obs(0),
            ]
        } else {
            FIG8_DLB_LB.iter().map(|&v| Cell::from(v)).collect()
        };
        rows.push((label.to_owned(), paper, measured));
    }
    print_experiment(
        "Fig. 8: dlb-lb (inter-CTA) — steal reads a later push",
        &CHIP_COLUMNS,
        rows,
    );
}
