//! Fig. 9 — `cas-sl`: the CUDA-by-Example spin lock reads stale values
//! inside its critical section; the Stuart–Owens `exch-sl` variant fails
//! the same way (Tab. 2).
//!
//! Shape to reproduce: stale reads on Fermi/Kepler and both AMD chips;
//! none on GTX5/Maxwell; the added fences eliminate them (the erratum
//! Nvidia published).

use weakgpu_bench::paper::{CHIP_COLUMNS, FIG9_CAS_SL};
use weakgpu_bench::{obs_row, print_experiment, BenchArgs, Cell};
use weakgpu_litmus::corpus;
use weakgpu_sim::chip::Chip;

fn main() {
    let args = BenchArgs::parse();
    let mut rows = Vec::new();
    let unfenced = obs_row(&corpus::cas_sl(false), &Chip::TABLED, &args);
    rows.push((
        "cas-sl".to_owned(),
        FIG9_CAS_SL.iter().map(|&v| Cell::from(v)).collect(),
        unfenced.into_iter().map(Cell::Obs).collect(),
    ));
    let fenced = obs_row(&corpus::cas_sl(true), &Chip::TABLED, &args);
    rows.push((
        "cas-sl+membar.gls".to_owned(),
        vec![Cell::Obs(0); 7],
        fenced.into_iter().map(Cell::Obs).collect(),
    ));
    // The Stuart–Owens exchange lock fails identically (Sec. 3.2.2).
    let exch = obs_row(&corpus::exch_sl(false), &Chip::TABLED, &args);
    rows.push((
        "exch-sl".to_owned(),
        vec![Cell::Na; 7], // no per-chip counts printed in the paper
        exch.into_iter().map(Cell::Obs).collect(),
    ));
    print_experiment(
        "Fig. 9: cas-sl (inter-CTA) — spin lock reads stale data",
        &CHIP_COLUMNS,
        rows,
    );
}
