//! Fig. 5 — `mp-volatile`: `.volatile` accesses in shared memory,
//! intra-CTA.
//!
//! Shape to reproduce: contrary to the PTX manual, `.volatile` does not
//! restore SC — Fermi and Kepler exhibit the weak outcome by the
//! thousands; Maxwell does not.

use weakgpu_bench::paper::{FIG5_MP_VOLATILE, NVIDIA_COLUMNS};
use weakgpu_bench::{obs_cell, print_experiment, BenchArgs, Cell};
use weakgpu_litmus::corpus;
use weakgpu_sim::chip::{Chip, Incantations};

fn main() {
    let args = BenchArgs::parse();
    let test = corpus::mp_volatile();
    let inc = Incantations::all_on();
    let measured: Vec<Cell> = Chip::NVIDIA_TABLED
        .iter()
        .map(|&c| Cell::Obs(obs_cell(&test, c, inc, &args)))
        .collect();
    print_experiment(
        "Fig. 5: mp-volatile (intra-CTA, shared memory)",
        &NVIDIA_COLUMNS,
        vec![(
            "mp-volatile".to_owned(),
            FIG5_MP_VOLATILE.iter().map(|&v| Cell::Obs(v)).collect(),
            measured,
        )],
    );
}
