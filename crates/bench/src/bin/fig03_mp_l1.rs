//! Fig. 3 — `mp-L1`: message passing with `.ca` loads, per fence scope,
//! on the Nvidia chips; plus the Sec. 3.1.2 AMD OpenCL mp results.
//!
//! Shape to reproduce: no fence suppresses the weak behaviour on the
//! Tesla C2075 (its L1 ignores fences); `membar.gl` suppresses it on every
//! other Nvidia chip; on AMD, fences work on TeraScale 2 but the GCN 1.0
//! compiler removes the fence between the loads, so the behaviour remains.

use weakgpu_bench::paper::{AMD_MP_UNFENCED, FIG3_MP_L1, NVIDIA_COLUMNS};
use weakgpu_bench::{obs_cell, print_experiment, BenchArgs, Cell};
use weakgpu_litmus::{corpus, FenceScope, ThreadScope};
use weakgpu_optcheck::{amd_compile, AmdTarget};
use weakgpu_sim::chip::{Chip, Incantations};

fn main() {
    let args = BenchArgs::parse();
    let inc = Incantations::best_inter_cta();

    let mut rows = Vec::new();
    for (label, paper) in FIG3_MP_L1 {
        let fence = match label {
            "membar.cta" => Some(FenceScope::Cta),
            "membar.gl" => Some(FenceScope::Gl),
            "membar.sys" => Some(FenceScope::Sys),
            _ => None,
        };
        let test = corpus::mp_l1(fence);
        let measured: Vec<Cell> = Chip::NVIDIA_TABLED
            .iter()
            .map(|&c| Cell::Obs(obs_cell(&test, c, inc, &args)))
            .collect();
        rows.push((
            label.to_owned(),
            paper.iter().map(|&v| Cell::Obs(v)).collect(),
            measured,
        ));
    }
    print_experiment(
        "Fig. 3: mp-L1 (inter-CTA, .ca loads) per fence",
        &NVIDIA_COLUMNS,
        rows,
    );

    // Sec. 3.1.2: OpenCL mp on AMD, unfenced and with global fences
    // (compiled by the vendor compiler, which drops the load-side fence on
    // GCN 1.0). AMD's best mp column is 15 (stress+gbc+sync), Tab. 6.
    let inc = Incantations {
        memory_stress: true,
        bank_conflicts: true,
        thread_sync: true,
        thread_rand: false,
    };
    let mut rows = Vec::new();
    let unfenced = corpus::mp(ThreadScope::InterCta, None);
    let fenced = corpus::mp(ThreadScope::InterCta, Some(FenceScope::Gl));
    for (chip, target, (_, paper_unfenced)) in [
        (
            Chip::RadeonHd6570,
            AmdTarget::TeraScale2,
            AMD_MP_UNFENCED[0],
        ),
        (Chip::RadeonHd7970, AmdTarget::Gcn10, AMD_MP_UNFENCED[1]),
    ] {
        let (u, _) = amd_compile(&unfenced, target);
        let (f, rep) = amd_compile(&fenced, target);
        let mu = obs_cell(&u, chip, inc, &args);
        let mf = obs_cell(&f, chip, inc, &args);
        rows.push((
            format!("{} unfenced", chip.short()),
            vec![Cell::Obs(paper_unfenced)],
            vec![Cell::Obs(mu)],
        ));
        rows.push((
            format!(
                "{} fenced ({} fences removed by compiler)",
                chip.short(),
                rep.fences_removed
            ),
            vec![Cell::from(if rep.fences_removed > 0 {
                Some(paper_unfenced / 2) // "still observed" — no exact count given
            } else {
                Some(0)
            })],
            vec![Cell::Obs(mf)],
        ));
    }
    print_experiment("Sec. 3.1.2: OpenCL mp on AMD", &["obs"], rows);
}
