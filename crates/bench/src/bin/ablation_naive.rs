//! Ablation (DESIGN.md §5.1) — mechanism vs naive outcome sampling.
//!
//! Replacing the operational machine with a uniform sampler over value
//! domains produces outcomes the PTX model forbids (it knows nothing of
//! coherence, atomicity or fences), while the machine's observations stay
//! inside the model. This justifies simulating the *mechanism*.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use weakgpu_axiom::enumerate::model_outcomes;
use weakgpu_bench::naive::naive_outcome;
use weakgpu_bench::BenchArgs;
use weakgpu_harness::runner::{run_test, RunConfig};
use weakgpu_litmus::{corpus, ThreadScope};
use weakgpu_models::ptx_model;
use weakgpu_sim::chip::{Chip, Incantations};

fn main() {
    let args = BenchArgs::parse();
    let n = args.iterations.min(20_000);
    let model = ptx_model();
    println!("== Ablation: operational machine vs naive sampler ({n} runs/test) ==\n");
    println!(
        "{:<22} {:>22} {:>22}",
        "test", "machine violations", "naive violations"
    );
    let mut machine_total = 0u64;
    let mut naive_total = 0u64;
    for test in [
        corpus::corr(),
        corpus::mp(ThreadScope::InterCta, None),
        corpus::cas_sl(true),
        corpus::sl_future(true),
        corpus::dlb_lb(true),
    ] {
        let verdict = model_outcomes(&test, &model, &Default::default()).unwrap();
        // Machine.
        let cfg = RunConfig {
            iterations: n,
            incantations: Incantations::best_inter_cta(),
            seed: args.seed,
            parallelism: None,
        };
        let report = run_test(&test, Chip::GtxTitan, &cfg).unwrap();
        let machine_viol: u64 = report
            .histogram
            .iter()
            .filter(|(o, _)| !verdict.allowed_outcomes.contains(*o))
            .map(|(_, c)| c)
            .sum();
        // Naive sampler.
        let mut rng = SmallRng::seed_from_u64(args.seed);
        let naive_viol = (0..n)
            .filter(|_| {
                let o = naive_outcome(&test, &mut rng);
                !verdict.allowed_outcomes.contains(&o)
            })
            .count() as u64;
        machine_total += machine_viol;
        naive_total += naive_viol;
        println!("{:<22} {machine_viol:>22} {naive_viol:>22}", test.name());
    }
    println!("\nTOTAL machine violations: {machine_total}  |  naive violations: {naive_total}");
    assert_eq!(machine_total, 0, "the machine must stay model-sound");
    assert!(naive_total > 0, "the naive sampler must violate the model");
}
