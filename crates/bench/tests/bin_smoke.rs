//! Smoke test keeping the figure/table reproduction binaries runnable:
//! one representative binary must produce its table and exit 0 at a
//! CI-friendly iteration count.

use std::process::Command;

#[test]
fn fig01_corr_runs_and_prints_its_table() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig01_corr"))
        .args(["--iterations", "500", "--seed", "7"])
        .output()
        .unwrap();
    assert!(out.status.success(), "fig01_corr exited {:?}", out.status);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Fig. 1"), "missing table header:\n{text}");
    assert!(text.contains("coRR"), "missing coRR row:\n{text}");
}

#[test]
fn fig01_corr_help_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig01_corr"))
        .arg("--help")
        .output()
        .unwrap();
    assert!(out.status.success(), "--help exited {:?}", out.status);
}
