//! Enumeration of relaxation cycles.
//!
//! A cycle is a sequence of edges where each edge's target direction
//! matches the next edge's source direction (cyclically), at least one
//! edge is external (so ≥ 2 threads arise), and location constraints are
//! satisfiable. Cycles are canonicalised up to rotation, and rotated so
//! that the walk starts at the beginning of a thread (i.e. the final edge
//! is external).

use crate::edge::Edge;

/// A well-formed relaxation cycle.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Cycle {
    edges: Vec<Edge>,
}

impl Cycle {
    /// Wraps an edge sequence as a cycle after validating it.
    ///
    /// Returns `None` if directions do not chain, no edge is external, or
    /// the location constraints are contradictory.
    pub fn new(edges: Vec<Edge>) -> Option<Cycle> {
        if edges.is_empty() || !directions_chain(&edges) {
            return None;
        }
        // At least two external edges: communication must leave the first
        // thread and come back, otherwise the "external" edge would relate
        // events of a single thread.
        if edges.iter().filter(|e| e.is_external()).count() < 2 {
            return None;
        }
        if !locations_consistent(&edges) {
            return None;
        }
        // Rotate so the final edge is external: the walk then starts at a
        // thread boundary. Prefer ending on a read-from/from-read edge —
        // a trailing Coe wraps a coherence constraint around the cycle,
        // which the synthesiser pins less directly.
        let last_ext = edges
            .iter()
            .rposition(|e| matches!(e, Edge::Rfe | Edge::Fre))
            .or_else(|| edges.iter().rposition(|e| e.is_external()))?;
        let mut rotated = edges;
        let shift = (last_ext + 1) % rotated.len();
        rotated.rotate_left(shift);
        Some(Cycle { edges: rotated })
    }

    /// The edges in walk order (final edge external).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of edges (= number of events).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Cycles are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of threads the synthesised test will have.
    pub fn num_threads(&self) -> usize {
        self.edges.iter().filter(|e| e.is_external()).count()
    }

    /// The canonical name: edge names joined by `-` over the
    /// lexicographically-least rotation that ends in an external edge.
    pub fn name(&self) -> String {
        let n = self.edges.len();
        let mut best: Option<Vec<String>> = None;
        for r in 0..n {
            if !self.edges[(r + n - 1) % n].is_external() {
                continue;
            }
            let names: Vec<String> = (0..n).map(|i| self.edges[(r + i) % n].name()).collect();
            if best.as_ref().is_none_or(|b| names < *b) {
                best = Some(names);
            }
        }
        best.expect("cycles contain an external edge").join("-")
    }
}

fn directions_chain(edges: &[Edge]) -> bool {
    let n = edges.len();
    (0..n).all(|i| edges[i].to_dir() == edges[(i + 1) % n].from_dir())
}

/// Checks location constraints with union-find: same-location edges merge
/// endpoint classes; different-location edges must separate them.
fn locations_consistent(edges: &[Edge]) -> bool {
    let n = edges.len();
    // Event i is the target of edge i-1 and source of edge i; classes over
    // events 0..n where edge i links event i to event (i+1) % n.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for (i, e) in edges.iter().enumerate() {
        if e.same_loc() {
            let (a, b) = (find(&mut parent, i), find(&mut parent, (i + 1) % n));
            parent[a] = b;
        }
    }
    for (i, e) in edges.iter().enumerate() {
        if !e.same_loc() && find(&mut parent, i) == find(&mut parent, (i + 1) % n) {
            return false;
        }
    }
    true
}

/// Enumerates all cycles over `alphabet` with between 2 and `max_edges`
/// edges, deduplicated up to rotation.
pub fn enumerate_cycles(alphabet: &[Edge], max_edges: usize) -> Vec<Cycle> {
    let mut out = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut stack: Vec<Edge> = Vec::new();
    for len in 2..=max_edges {
        extend(alphabet, len, &mut stack, &mut seen, &mut out);
    }
    out
}

fn extend(
    alphabet: &[Edge],
    target_len: usize,
    stack: &mut Vec<Edge>,
    seen: &mut std::collections::BTreeSet<String>,
    out: &mut Vec<Cycle>,
) {
    if stack.len() == target_len {
        if let Some(cycle) = Cycle::new(stack.clone()) {
            if seen.insert(cycle.name()) {
                out.push(cycle);
            }
        }
        return;
    }
    for &e in alphabet {
        // Prune: directions must chain with the previous edge.
        if let Some(&prev) = stack.last() {
            if prev.to_dir() != e.from_dir() {
                continue;
            }
        }
        stack.push(e);
        extend(alphabet, target_len, stack, seen, out);
        stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Dir;

    fn pod(from: Dir, to: Dir) -> Edge {
        Edge::Po {
            same_loc: false,
            from,
            to,
        }
    }

    #[test]
    fn mp_cycle_is_valid() {
        // mp: W x; W y (po) — rfe — R y; R x (po) — fre back.
        let c = Cycle::new(vec![
            pod(Dir::W, Dir::W),
            Edge::Rfe,
            pod(Dir::R, Dir::R),
            Edge::Fre,
        ])
        .expect("mp cycle");
        assert_eq!(c.num_threads(), 2);
        assert_eq!(c.len(), 4);
        // Rotated to end on an external edge.
        assert!(c.edges().last().unwrap().is_external());
    }

    #[test]
    fn direction_mismatch_rejected() {
        // Rfe ends at R, Coe starts at W: mismatch.
        assert!(Cycle::new(vec![Edge::Rfe, Edge::Coe]).is_none());
    }

    #[test]
    fn internal_only_rejected() {
        assert!(Cycle::new(vec![pod(Dir::W, Dir::W), pod(Dir::W, Dir::W)]).is_none());
    }

    #[test]
    fn contradictory_locations_rejected() {
        // Rfe (same loc) then Fre (same loc) closing a 2-cycle is fine,
        // but a 2-cycle of Rfe with PodRW (different loc) is impossible:
        // the two events must be both same and different location.
        assert!(Cycle::new(vec![Edge::Rfe, pod(Dir::R, Dir::W)]).is_none());
        assert!(Cycle::new(vec![Edge::Rfe, Edge::Fre]).is_some());
    }

    #[test]
    fn corr_cycle_with_same_loc_po() {
        // coRR: W x — rfe → R x — pos(RR) → R x — fre → W x.
        let c = Cycle::new(vec![
            Edge::Rfe,
            Edge::Po {
                same_loc: true,
                from: Dir::R,
                to: Dir::R,
            },
            Edge::Fre,
        ])
        .expect("coRR cycle");
        assert_eq!(c.num_threads(), 2);
    }

    #[test]
    fn rotation_deduplication() {
        let cycles = enumerate_cycles(&[Edge::Rfe, Edge::Fre], 2);
        // Rfe-Fre and Fre-Rfe are the same cycle up to rotation.
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].name(), "Fre-Rfe");
    }

    #[test]
    fn enumeration_counts_grow() {
        let small = Edge::small_alphabet();
        let c3 = enumerate_cycles(&small, 3);
        let c4 = enumerate_cycles(&small, 4);
        assert!(!c3.is_empty());
        assert!(c4.len() > c3.len());
        // All enumerated cycles are valid and distinct by name.
        let mut names: Vec<String> = c4.iter().map(Cycle::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), c4.len());
    }

    #[test]
    fn sb_cycle_enumerated() {
        let cycles = enumerate_cycles(&Edge::small_alphabet(), 4);
        // sb: PodWR Fre PodWR Fre.
        assert!(
            cycles.iter().any(|c| c.name() == "PodWR-Fre-PodWR-Fre"),
            "sb cycle missing"
        );
        // lb: PodRW Rfe PodRW Rfe.
        assert!(
            cycles.iter().any(|c| c.name() == "PodRW-Rfe-PodRW-Rfe"),
            "lb cycle missing"
        );
    }
}
