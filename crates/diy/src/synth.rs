//! Synthesis of litmus tests from relaxation cycles.
//!
//! The walk over a [`Cycle`] (whose final edge is external) assigns each
//! event a thread, a location and — for writes — a value; reads receive
//! fresh registers and the final condition pins exactly the read-from and
//! coherence choices that make the cycle's non-SC execution the witnessed
//! outcome. Manufactured dependency edges expand to the `-O3`-robust
//! and-high-bit instruction chains of the paper's Fig. 13b.

use std::fmt;

use weakgpu_litmus::build;
use weakgpu_litmus::{FinalExpr, Instr, LitmusTest, Predicate, ScopeTree, ThreadScope, Value};

use crate::cycle::{enumerate_cycles, Cycle};
use crate::edge::{DepKind, Dir, Edge};

/// Generation configuration: the edge alphabet, cycle-length bound, and
/// the GPU dimensions each cycle is expanded over.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Edge alphabet.
    pub alphabet: Vec<Edge>,
    /// Maximum edges per cycle (= events per test).
    pub max_edges: usize,
    /// Thread placements to emit.
    pub placements: Vec<ThreadScope>,
    /// Also emit a shared-memory variant for intra-CTA placements.
    pub shared_variants: bool,
}

impl GenConfig {
    /// The named families: `small` (tests/examples) and `paper`
    /// (the Sec. 5.4 validation scale). See [`GenConfig::named`].
    pub const FAMILY_NAMES: [&'static str; 2] = ["small", "paper"];

    /// Looks a family configuration up by name (`"small"` or `"paper"`),
    /// the vocabulary of `weakgpu sweep --family`.
    pub fn named(name: &str) -> Option<Self> {
        match name {
            "small" => Some(GenConfig::small()),
            "paper" => Some(GenConfig::paper()),
            _ => None,
        }
    }

    /// A compact configuration for tests and examples (hundreds of tests).
    pub fn small() -> Self {
        GenConfig {
            alphabet: Edge::small_alphabet(),
            max_edges: 4,
            placements: vec![ThreadScope::IntraCta, ThreadScope::InterCta],
            shared_variants: false,
        }
    }

    /// Paper-scale configuration: 9 234 cycles over the full alphabet at
    /// up to five edges, ≈ 18k tests over the two placements (cf. the
    /// 10 930 of Sec. 5.4).
    pub fn paper() -> Self {
        GenConfig {
            alphabet: Edge::full_alphabet(),
            max_edges: 5,
            placements: vec![ThreadScope::IntraCta, ThreadScope::InterCta],
            shared_variants: false,
        }
    }

    /// All cycles of this configuration.
    pub fn cycles(&self) -> Vec<Cycle> {
        enumerate_cycles(&self.alphabet, self.max_edges)
    }
}

/// Why a cycle cannot be synthesised.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SynthError {
    /// A read is constrained to two different values by its incident
    /// edges (e.g. an `Rfe` in and an `Fre` out that disagree).
    InconsistentRead,
    /// The cycle's coherence edges contradict each other (e.g. a pure
    /// `Coe` loop on one location) — no execution can witness it.
    CyclicCoherence,
    /// The placement is incompatible (shared memory requires intra-CTA).
    SharedNeedsIntraCta,
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::InconsistentRead => {
                write!(f, "cycle constrains a read to two different values")
            }
            SynthError::CyclicCoherence => {
                write!(f, "cycle's coherence edges contradict each other")
            }
            SynthError::SharedNeedsIntraCta => {
                write!(f, "shared-memory tests require intra-CTA placement")
            }
        }
    }
}

impl std::error::Error for SynthError {}

const LOC_NAMES: [&str; 8] = ["x", "y", "z", "w", "a", "b", "c", "d"];

/// Synthesises one litmus test from `cycle` at the given placement.
///
/// # Errors
///
/// See [`SynthError`].
pub fn synthesise(
    cycle: &Cycle,
    placement: ThreadScope,
    shared: bool,
) -> Result<LitmusTest, SynthError> {
    if shared && placement != ThreadScope::IntraCta {
        return Err(SynthError::SharedNeedsIntraCta);
    }
    let edges = cycle.edges();
    let n = edges.len();

    // Event i is the source of edge i; its direction comes from the edge.
    let dirs: Vec<Dir> = edges.iter().map(|e| e.from_dir()).collect();

    // Thread assignment: a new thread after each external edge; the final
    // edge is external, so event 0 opens thread 0.
    let mut thread_of = vec![0usize; n];
    let mut t = 0;
    for i in 0..n {
        thread_of[i] = t;
        if edges[i].is_external() {
            t += 1;
        }
    }
    let num_threads = t;

    // Location classes via union-find over same-location edges.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for (i, e) in edges.iter().enumerate() {
        if e.same_loc() {
            let (a, b) = (find(&mut parent, i), find(&mut parent, (i + 1) % n));
            parent[a] = b;
        }
    }
    let mut loc_of = vec![usize::MAX; n];
    let mut num_locs = 0;
    for i in 0..n {
        let root = find(&mut parent, i);
        if loc_of[root] == usize::MAX {
            loc_of[root] = num_locs;
            num_locs += 1;
        }
        loc_of[i] = loc_of[root];
    }
    assert!(num_locs <= LOC_NAMES.len(), "cycle uses too many locations");

    // Write values: per location, in walk order (values identify writes;
    // the *coherence* order is pinned separately below).
    let mut value_of = vec![0i64; n];
    let mut writes_per_loc = vec![0i64; num_locs];
    for i in 0..n {
        if dirs[i] == Dir::W {
            writes_per_loc[loc_of[i]] += 1;
            value_of[i] = writes_per_loc[loc_of[i]];
        }
    }

    // Pin each location's coherence order: a topological sort of its
    // writes under the cycle's Coe constraints (including one that wraps
    // around the cycle, as in 2+2W shapes), tie-broken by walk order.
    // A cyclic constraint set means the cycle is unsatisfiable as a
    // coherence witness.
    let mut co_order: Vec<Vec<usize>> = vec![Vec::new(); num_locs];
    for (l, slot) in co_order.iter_mut().enumerate() {
        let writes: Vec<usize> = (0..n)
            .filter(|&i| dirs[i] == Dir::W && loc_of[i] == l)
            .collect();
        let mut constraints: Vec<(usize, usize)> = Vec::new();
        for (i, e) in edges.iter().enumerate() {
            if *e == Edge::Coe && loc_of[i] == l {
                constraints.push((i, (i + 1) % n));
            }
        }
        let mut order: Vec<usize> = Vec::with_capacity(writes.len());
        let mut remaining = writes;
        while !remaining.is_empty() {
            let next = remaining.iter().position(|&w| {
                constraints
                    .iter()
                    .all(|&(a, b)| b != w || !remaining.contains(&a))
            });
            match next {
                Some(pos) => order.push(remaining.remove(pos)),
                None => return Err(SynthError::CyclicCoherence),
            }
        }
        *slot = order;
    }

    // Read constraints from incident communication edges.
    let mut read_value: Vec<Option<i64>> = vec![None; n];
    for i in 0..n {
        if dirs[i] != Dir::R {
            continue;
        }
        let incoming = edges[(i + n - 1) % n];
        let outgoing = edges[i];
        let mut require = |v: i64| -> Result<(), SynthError> {
            match read_value[i] {
                Some(existing) if existing != v => Err(SynthError::InconsistentRead),
                _ => {
                    read_value[i] = Some(v);
                    Ok(())
                }
            }
        };
        if incoming == Edge::Rfe {
            let w = (i + n - 1) % n;
            require(value_of[w])?;
        }
        if outgoing == Edge::Fre {
            // The read sees the coherence-predecessor of the target write
            // (or the initial 0 if the target is coherence-first).
            let w = (i + 1) % n;
            let order = &co_order[loc_of[w]];
            let pos = order.iter().position(|&x| x == w).expect("w is a write");
            let v = if pos == 0 {
                0
            } else {
                value_of[order[pos - 1]]
            };
            require(v)?;
        }
    }

    // Emit instructions.
    let mut threads: Vec<Vec<Instr>> = vec![Vec::new(); num_threads];
    let mut reg_counter = vec![0usize; num_threads];
    let mut read_reg: Vec<Option<String>> = vec![None; n];
    let mut reg_inits: Vec<(usize, String, Value)> = Vec::new();

    for i in 0..n {
        let tid = thread_of[i];
        let loc = LOC_NAMES[loc_of[i]];
        let code = &mut threads[tid];

        // The incoming edge, when internal, may add fences or dependency
        // chains before this event.
        let incoming = edges[(i + n - 1) % n];
        let mut dep_addr_reg: Option<String> = None;
        let mut dep_data_reg: Option<String> = None;
        let mut dep_pred: Option<String> = None;
        match incoming {
            Edge::Fenced { scope, .. } if thread_of[(i + n - 1) % n] == tid => {
                code.push(build::membar(scope));
            }
            Edge::Dp { dep, .. } if thread_of[(i + n - 1) % n] == tid => {
                let src = read_reg[(i + n - 1) % n]
                    .clone()
                    .expect("dependency source is a read");
                let k = reg_counter[tid];
                reg_counter[tid] += 1;
                match dep {
                    DepKind::Addr => {
                        // Fig. 13b: and-high-bit, convert, add into a
                        // pointer register initialised to the target.
                        let (tmp, cvt, areg) = (format!("t{k}"), format!("u{k}"), format!("a{k}"));
                        code.push(build::and(&tmp, build::reg(&src), build::imm(0x8000_0000)));
                        code.push(build::cvt(&cvt, build::reg(&tmp)));
                        code.push(build::add(&areg, build::reg(&areg), build::reg(&cvt)));
                        reg_inits.push((tid, areg.clone(), Value::ptr(loc)));
                        dep_addr_reg = Some(areg);
                    }
                    DepKind::Data => {
                        let (tmp, vreg) = (format!("t{k}"), format!("v{k}"));
                        code.push(build::and(&tmp, build::reg(&src), build::imm(0x8000_0000)));
                        code.push(build::add(&vreg, build::reg(&tmp), build::imm(value_of[i])));
                        dep_data_reg = Some(vreg);
                    }
                    DepKind::Ctrl => {
                        // A predicate that is always true but carries the
                        // read's taint: values never reach i32::MAX.
                        let p = format!("p{k}");
                        code.push(build::setp_ne(
                            &p,
                            build::reg(&src),
                            build::imm(0x7fff_ffff),
                        ));
                        dep_pred = Some(p);
                    }
                }
            }
            _ => {}
        }

        let instr = match dirs[i] {
            Dir::W => {
                if let Some(a) = &dep_addr_reg {
                    // Address-dependent stores need the value in a register.
                    let k = reg_counter[tid];
                    reg_counter[tid] += 1;
                    let vreg = format!("v{k}");
                    code.push(build::mov(&vreg, value_of[i]));
                    build::st_reg(build::reg(a), &vreg)
                } else if let Some(v) = &dep_data_reg {
                    build::st_reg(loc, v)
                } else {
                    build::st(loc, value_of[i])
                }
            }
            Dir::R => {
                let k = reg_counter[tid];
                reg_counter[tid] += 1;
                let r = format!("r{k}");
                read_reg[i] = Some(r.clone());
                match &dep_addr_reg {
                    Some(a) => build::ld(&r, build::reg(a)),
                    None => build::ld(&r, loc),
                }
            }
        };
        let instr = match dep_pred {
            Some(p) => instr.guarded(p.as_str(), true),
            None => instr,
        };
        code.push(instr);
    }

    // Final condition.
    let mut terms: Vec<Predicate> = Vec::new();
    for i in 0..n {
        if let (Some(v), Some(r)) = (read_value[i], &read_reg[i]) {
            terms.push(Predicate::Eq(FinalExpr::reg(thread_of[i], r.as_str()), v));
        }
    }
    for (l, order) in co_order.iter().enumerate() {
        if order.len() > 1 {
            // Pin the coherence-last write via the final memory value.
            let last = *order.last().expect("non-empty order");
            terms.push(Predicate::mem_eq(LOC_NAMES[l], value_of[last]));
        }
    }
    let cond = Predicate::all(terms);

    // Assemble.
    let suffix = match (placement, shared) {
        (ThreadScope::InterCta, _) => "+inter",
        (ThreadScope::IntraCta, false) => "+intra",
        (ThreadScope::IntraCta, true) => "+intra+shared",
        (ThreadScope::IntraWarp, _) => "+warp",
    };
    let mut builder = LitmusTest::builder(format!("{}{suffix}", cycle.name()))
        .doc(format!("diy-generated from cycle {}", cycle.name()));
    for &name in LOC_NAMES.iter().take(num_locs) {
        builder = if shared {
            builder.shared(name, 0)
        } else {
            builder.global(name, 0)
        };
    }
    for code in threads {
        builder = builder.thread(code);
    }
    for (tid, reg, v) in reg_inits {
        builder = builder.reg_init(tid, reg.as_str(), v);
    }
    builder = builder.scope_tree(ScopeTree::for_scope(placement, num_threads));
    builder = builder.exists(cond);
    Ok(builder
        .build()
        .expect("synthesised tests are structurally valid"))
}

/// Expands a cycle over every placement/region in the configuration,
/// silently skipping infeasible combinations.
pub fn expand(cycle: &Cycle, cfg: &GenConfig) -> Vec<LitmusTest> {
    let mut out = Vec::new();
    for &placement in &cfg.placements {
        if let Ok(t) = synthesise(cycle, placement, false) {
            out.push(t);
        }
        if cfg.shared_variants && placement == ThreadScope::IntraCta {
            if let Ok(t) = synthesise(cycle, placement, true) {
                out.push(t);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_axiom::{model_outcomes, EnumConfig};
    use weakgpu_models::{ptx_model, sc_model};

    fn pod(from: Dir, to: Dir) -> Edge {
        Edge::Po {
            same_loc: false,
            from,
            to,
        }
    }

    fn mp_cycle() -> Cycle {
        Cycle::new(vec![
            pod(Dir::W, Dir::W),
            Edge::Rfe,
            pod(Dir::R, Dir::R),
            Edge::Fre,
        ])
        .unwrap()
    }

    #[test]
    fn mp_synthesis_shape() {
        let t = synthesise(&mp_cycle(), ThreadScope::InterCta, false).unwrap();
        assert_eq!(t.num_threads(), 2);
        assert_eq!(t.memory().len(), 2);
        // Two stores on one thread, two loads on the other.
        let stores: usize = t.threads()[0]
            .iter()
            .filter(|i| matches!(i, Instr::St { .. }))
            .count()
            + t.threads()[1]
                .iter()
                .filter(|i| matches!(i, Instr::St { .. }))
                .count();
        assert_eq!(stores, 2);
        // Condition pins both reads.
        assert_eq!(t.observed().len(), 2);
    }

    #[test]
    fn synthesised_mp_is_sc_forbidden_ptx_allowed() {
        let t = synthesise(&mp_cycle(), ThreadScope::InterCta, false).unwrap();
        let cfg = EnumConfig::default();
        let sc = model_outcomes(&t, &sc_model(), &cfg).unwrap();
        assert!(!sc.condition_witnessed, "cycle outcome must be non-SC");
        let ptx = model_outcomes(&t, &ptx_model(), &cfg).unwrap();
        assert!(ptx.condition_witnessed, "unfenced mp is PTX-allowed");
    }

    #[test]
    fn fenced_cycles_are_ptx_forbidden() {
        use weakgpu_litmus::FenceScope;
        // mp with gl fences on both sides.
        let c = Cycle::new(vec![
            Edge::Fenced {
                scope: FenceScope::Gl,
                from: Dir::W,
                to: Dir::W,
            },
            Edge::Rfe,
            Edge::Fenced {
                scope: FenceScope::Gl,
                from: Dir::R,
                to: Dir::R,
            },
            Edge::Fre,
        ])
        .unwrap();
        let t = synthesise(&c, ThreadScope::InterCta, false).unwrap();
        let ptx = model_outcomes(&t, &ptx_model(), &EnumConfig::default()).unwrap();
        assert!(!ptx.condition_witnessed);
    }

    use weakgpu_litmus::FenceScope;

    #[test]
    fn dependency_chains_emitted() {
        // mp with an address dependency on the read side.
        let c = Cycle::new(vec![
            Edge::Fenced {
                scope: FenceScope::Gl,
                from: Dir::W,
                to: Dir::W,
            },
            Edge::Rfe,
            Edge::Dp {
                dep: DepKind::Addr,
                to: Dir::R,
            },
            Edge::Fre,
        ])
        .unwrap();
        let t = synthesise(&c, ThreadScope::InterCta, false).unwrap();
        // The reader thread contains the and/cvt/add chain.
        let reader = &t.threads()[1];
        assert!(reader.iter().any(|i| matches!(i, Instr::And { .. })));
        assert!(reader.iter().any(|i| matches!(i, Instr::Cvt { .. })));
        // And the model forbids the outcome (fence + dependency).
        let ptx = model_outcomes(&t, &ptx_model(), &EnumConfig::default()).unwrap();
        assert!(!ptx.condition_witnessed);
    }

    #[test]
    fn ctrl_dependency_guards_target() {
        let c = Cycle::new(vec![
            Edge::Fenced {
                scope: FenceScope::Gl,
                from: Dir::W,
                to: Dir::W,
            },
            Edge::Rfe,
            Edge::Dp {
                dep: DepKind::Ctrl,
                to: Dir::R,
            },
            Edge::Fre,
        ])
        .unwrap();
        let t = synthesise(&c, ThreadScope::InterCta, false).unwrap();
        assert!(t.threads()[1]
            .iter()
            .any(|i| matches!(i, Instr::Guard { .. })));
    }

    #[test]
    fn coe_cycles_pin_final_memory() {
        // 2+2w-style: W x=1 — coe → W x=2 … needs final memory values.
        let c = Cycle::new(vec![
            pod(Dir::W, Dir::W),
            Edge::Coe,
            pod(Dir::W, Dir::W),
            Edge::Coe,
        ])
        .unwrap();
        let t = synthesise(&c, ThreadScope::InterCta, false).unwrap();
        let mem_terms: Vec<_> = t
            .observed()
            .into_iter()
            .filter(|e| matches!(e, FinalExpr::Mem(_)))
            .collect();
        assert_eq!(mem_terms.len(), 2, "both locations have two writes");
    }

    #[test]
    fn shared_requires_intra_cta() {
        assert_eq!(
            synthesise(&mp_cycle(), ThreadScope::InterCta, true).unwrap_err(),
            SynthError::SharedNeedsIntraCta
        );
        let t = synthesise(&mp_cycle(), ThreadScope::IntraCta, true).unwrap();
        assert_eq!(
            t.memory().region(&"x".into()),
            Some(weakgpu_litmus::Region::Shared)
        );
    }

    #[test]
    fn three_thread_cycles() {
        // wrc-like: Rfe — PodRR — Rfe? Use: W x — rfe → R x; (po) R y? Build
        // isa-style 3-thread: Rfe, DpCtrl? Simply: Rfe, PodRR, Rfe, PodRR, Fre…
        let c = Cycle::new(vec![
            Edge::Rfe,
            pod(Dir::R, Dir::W),
            Edge::Rfe,
            pod(Dir::R, Dir::R),
            Edge::Fre,
        ])
        .unwrap();
        assert_eq!(c.num_threads(), 3);
        let t = synthesise(&c, ThreadScope::InterCta, false).unwrap();
        assert_eq!(t.num_threads(), 3);
        assert_eq!(t.scope_tree().num_ctas(), 3);
    }
}
