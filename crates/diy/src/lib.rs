//! diy-style automatic litmus-test generation (paper Sec. 4.1).
//!
//! The paper extends the `diy` tool of Alglave et al.: non-SC executions
//! are cycles of *relaxation edges*; enumerating cycles over an edge
//! alphabet and synthesising one litmus test per cycle yields systematic
//! test families (10 930 tests in the paper's validation).
//!
//! * [`edge::Edge`] — the GPU edge alphabet: external communication edges
//!   (`Rfe`, `Fre`, `Coe`), program-order edges (same/different location,
//!   each direction pair), fenced edges at the three PTX scopes, and
//!   manufactured dependency edges (address/data/control);
//! * [`cycle`] — enumeration of well-formed cycles up to a length bound,
//!   canonicalised up to rotation;
//! * [`synth`] — synthesis of a [`weakgpu_litmus::LitmusTest`] from a
//!   cycle, including register allocation, value assignment, the final
//!   condition characterising the cycle's non-SC execution, and the
//!   GPU dimensions: scope-tree placement and memory region.
//!
//! ```
//! use weakgpu_diy::{generate, GenConfig};
//!
//! let tests = generate(&GenConfig::small());
//! assert!(tests.len() > 50);
//! // Every generated test is a valid litmus test with ≥ 2 threads.
//! assert!(tests.iter().all(|t| t.num_threads() >= 2));
//! ```

pub mod cycle;
pub mod edge;
pub mod synth;

pub use cycle::{enumerate_cycles, Cycle};
pub use edge::{DepKind, Dir, Edge};
pub use synth::{synthesise, GenConfig, SynthError};

use weakgpu_litmus::LitmusTest;

/// Generates the full test family for a configuration: every cycle over
/// the alphabet, synthesised at every requested placement and region.
///
/// The returned family is in **canonical order** — sorted by test name,
/// which is unique within a family (cycle names are canonical up to
/// rotation and each placement/region appends a distinct suffix). The
/// order is therefore a pure function of the configuration: bit-identical
/// across calls, processes, and machines. Sharded sweeps rely on this to
/// partition the family deterministically by index.
pub fn generate(cfg: &GenConfig) -> Vec<LitmusTest> {
    let cycles = enumerate_cycles(&cfg.alphabet, cfg.max_edges);
    let mut tests = Vec::new();
    for cycle in &cycles {
        tests.extend(synth::expand(cycle, cfg));
    }
    tests.sort_by(|a, b| a.name().cmp(b.name()));
    tests
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_family_is_nontrivial_and_valid() {
        let tests = generate(&GenConfig::small());
        assert!(tests.len() > 50, "got {}", tests.len());
        for t in &tests {
            assert!(t.num_threads() >= 2, "{}", t.name());
            assert!(!t.observed().is_empty(), "{}", t.name());
        }
        // Names are unique.
        let mut names: Vec<&str> = tests.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), tests.len(), "duplicate test names");
    }

    #[test]
    fn every_generated_test_is_sc_forbidden() {
        // The defining property of diy cycles: each test's final condition
        // characterises a non-SC execution, so SC must forbid it on every
        // test of the family (and the synthesis must have pinned the
        // coherence order tightly enough to enforce that).
        use weakgpu_axiom::enumerate::model_outcomes;
        use weakgpu_models::sc_model;
        let sc = sc_model();
        for t in generate(&GenConfig::small()) {
            let v = model_outcomes(&t, &sc, &Default::default())
                .unwrap_or_else(|e| panic!("{}: {e}", t.name()));
            assert!(
                !v.condition_witnessed,
                "{}: SC satisfies the cycle condition",
                t.name()
            );
        }
    }

    #[test]
    fn paper_scale_family_reaches_thousands() {
        let cfg = GenConfig::paper();
        let cycles = enumerate_cycles(&cfg.alphabet, cfg.max_edges);
        // The synthesis expands each cycle across placements/regions.
        let per_cycle = 2; // at least intra/inter placements
        assert!(
            cycles.len() * per_cycle > 2_000,
            "only {} cycles",
            cycles.len()
        );
    }
}
