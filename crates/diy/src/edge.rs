//! The relaxation-edge alphabet.
//!
//! Edge names follow the `diy` convention: `Rfe`/`Fre`/`Coe` for external
//! communication, `Po{s,d}{R,W}{R,W}` for program order over the same (`s`)
//! or different (`d`) locations, `Membar.{cta,gl,sys}d{R,W}{R,W}` for
//! fenced program order, and `Dp{Addr,Data,Ctrl}d{R,W}` for manufactured
//! dependencies.

use std::fmt;

use weakgpu_litmus::FenceScope;

/// Direction of a memory event: read or write.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Dir {
    /// Read.
    R,
    /// Write.
    W,
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dir::R => write!(f, "R"),
            Dir::W => write!(f, "W"),
        }
    }
}

/// Kinds of manufactured dependency (paper Sec. 4.5).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DepKind {
    /// Address dependency (and-high-bit into the address register).
    Addr,
    /// Data dependency (and-high-bit into the stored value).
    Data,
    /// Control dependency (setp + predicated target).
    Ctrl,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepKind::Addr => write!(f, "Addr"),
            DepKind::Data => write!(f, "Data"),
            DepKind::Ctrl => write!(f, "Ctrl"),
        }
    }
}

/// One relaxation edge.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Edge {
    /// External read-from: a write, read by another thread.
    Rfe,
    /// External from-read: a read, overwritten by another thread's write.
    Fre,
    /// External coherence: a write, coherence-followed by another thread's
    /// write.
    Coe,
    /// Program order between two accesses of one thread.
    Po {
        /// Same (`true`) or different (`false`) location.
        same_loc: bool,
        /// Direction of the source access.
        from: Dir,
        /// Direction of the target access.
        to: Dir,
    },
    /// Program order with a fence in between (always different locations).
    Fenced {
        /// Fence scope.
        scope: FenceScope,
        /// Direction of the source access.
        from: Dir,
        /// Direction of the target access.
        to: Dir,
    },
    /// A manufactured dependency from a read to a later access of a
    /// different location.
    Dp {
        /// Dependency kind.
        dep: DepKind,
        /// Direction of the target access (data dependencies target
        /// writes only).
        to: Dir,
    },
}

impl Edge {
    /// Direction of the event this edge leaves.
    pub fn from_dir(self) -> Dir {
        match self {
            Edge::Rfe | Edge::Coe => Dir::W,
            Edge::Fre => Dir::R,
            Edge::Po { from, .. } | Edge::Fenced { from, .. } => from,
            Edge::Dp { .. } => Dir::R,
        }
    }

    /// Direction of the event this edge enters.
    pub fn to_dir(self) -> Dir {
        match self {
            Edge::Rfe => Dir::R,
            Edge::Fre | Edge::Coe => Dir::W,
            Edge::Po { to, .. } | Edge::Fenced { to, .. } => to,
            Edge::Dp { to, .. } => to,
        }
    }

    /// `true` for communication edges crossing threads.
    pub fn is_external(self) -> bool {
        matches!(self, Edge::Rfe | Edge::Fre | Edge::Coe)
    }

    /// `true` if source and target access the same location.
    pub fn same_loc(self) -> bool {
        match self {
            Edge::Rfe | Edge::Fre | Edge::Coe => true,
            Edge::Po { same_loc, .. } => same_loc,
            Edge::Fenced { .. } | Edge::Dp { .. } => false,
        }
    }

    /// The canonical `diy`-style name.
    pub fn name(self) -> String {
        match self {
            Edge::Rfe => "Rfe".to_owned(),
            Edge::Fre => "Fre".to_owned(),
            Edge::Coe => "Coe".to_owned(),
            Edge::Po { same_loc, from, to } => {
                format!("Po{}{from}{to}", if same_loc { "s" } else { "d" })
            }
            Edge::Fenced { scope, from, to } => {
                format!("Membar{}d{from}{to}", scope.suffix())
            }
            Edge::Dp { dep, to } => format!("Dp{dep}d{to}"),
        }
    }

    /// The default alphabet used for paper-scale generation: all external
    /// edges, all valid po edges, fenced edges at every scope, and
    /// dependency edges.
    pub fn full_alphabet() -> Vec<Edge> {
        let mut v = vec![Edge::Rfe, Edge::Fre, Edge::Coe];
        for from in [Dir::R, Dir::W] {
            for to in [Dir::R, Dir::W] {
                v.push(Edge::Po {
                    same_loc: false,
                    from,
                    to,
                });
                for scope in FenceScope::ALL {
                    v.push(Edge::Fenced { scope, from, to });
                }
            }
        }
        // Same-location po edges: the interesting ones are the coherence
        // shapes; `PosRR` is the load-load hazard.
        for (from, to) in [
            (Dir::R, Dir::R),
            (Dir::W, Dir::W),
            (Dir::R, Dir::W),
            (Dir::W, Dir::R),
        ] {
            v.push(Edge::Po {
                same_loc: true,
                from,
                to,
            });
        }
        for dep in [DepKind::Addr, DepKind::Ctrl] {
            for to in [Dir::R, Dir::W] {
                v.push(Edge::Dp { dep, to });
            }
        }
        v.push(Edge::Dp {
            dep: DepKind::Data,
            to: Dir::W,
        });
        v
    }

    /// A compact alphabet for quick runs: external edges, different-
    /// location po, gl-fenced po and the same-location read-read hazard.
    pub fn small_alphabet() -> Vec<Edge> {
        let mut v = vec![Edge::Rfe, Edge::Fre, Edge::Coe];
        for from in [Dir::R, Dir::W] {
            for to in [Dir::R, Dir::W] {
                v.push(Edge::Po {
                    same_loc: false,
                    from,
                    to,
                });
                v.push(Edge::Fenced {
                    scope: FenceScope::Gl,
                    from,
                    to,
                });
            }
        }
        v.push(Edge::Po {
            same_loc: true,
            from: Dir::R,
            to: Dir::R,
        });
        v
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions() {
        assert_eq!(Edge::Rfe.from_dir(), Dir::W);
        assert_eq!(Edge::Rfe.to_dir(), Dir::R);
        assert_eq!(Edge::Fre.from_dir(), Dir::R);
        assert_eq!(Edge::Fre.to_dir(), Dir::W);
        assert_eq!(Edge::Coe.from_dir(), Dir::W);
        let po = Edge::Po {
            same_loc: false,
            from: Dir::W,
            to: Dir::R,
        };
        assert_eq!(po.from_dir(), Dir::W);
        assert_eq!(po.to_dir(), Dir::R);
        assert_eq!(
            Edge::Dp {
                dep: DepKind::Addr,
                to: Dir::R
            }
            .from_dir(),
            Dir::R
        );
    }

    #[test]
    fn names_follow_diy_convention() {
        assert_eq!(Edge::Rfe.name(), "Rfe");
        assert_eq!(
            Edge::Po {
                same_loc: false,
                from: Dir::W,
                to: Dir::R
            }
            .name(),
            "PodWR"
        );
        assert_eq!(
            Edge::Po {
                same_loc: true,
                from: Dir::R,
                to: Dir::R
            }
            .name(),
            "PosRR"
        );
        assert_eq!(
            Edge::Fenced {
                scope: FenceScope::Gl,
                from: Dir::W,
                to: Dir::W
            }
            .name(),
            "Membar.gldWW"
        );
        assert_eq!(
            Edge::Dp {
                dep: DepKind::Addr,
                to: Dir::R
            }
            .name(),
            "DpAddrdR"
        );
    }

    #[test]
    fn alphabets() {
        let full = Edge::full_alphabet();
        let small = Edge::small_alphabet();
        assert!(full.len() > small.len());
        assert!(small.iter().all(|e| full.contains(e)));
        // No duplicates.
        let mut f = full.clone();
        f.sort_unstable();
        f.dedup();
        assert_eq!(f.len(), full.len());
    }

    #[test]
    fn externality_and_location() {
        assert!(Edge::Rfe.is_external() && Edge::Rfe.same_loc());
        assert!(!Edge::Po {
            same_loc: false,
            from: Dir::R,
            to: Dir::R
        }
        .is_external());
        assert!(!Edge::Dp {
            dep: DepKind::Ctrl,
            to: Dir::W
        }
        .same_loc());
    }
}
