//! Generation determinism at paper scale: sharded validation sweeps
//! partition the family by canonical index, so `generate` must be a pure
//! function of the configuration — same tests, same order, no duplicates,
//! on every call and every machine.

use std::sync::OnceLock;

use weakgpu_diy::{generate, GenConfig};
use weakgpu_litmus::LitmusTest;

/// The paper family, generated once per test binary (each generation is
/// cheap in release but adds up under the dev profile).
fn paper_family() -> &'static [LitmusTest] {
    static FAMILY: OnceLock<Vec<LitmusTest>> = OnceLock::new();
    FAMILY.get_or_init(|| generate(&GenConfig::paper()))
}

#[test]
fn paper_family_has_no_duplicate_canonical_tests() {
    let tests = paper_family();
    assert!(
        tests.len() > 10_000,
        "paper family too small: {}",
        tests.len()
    );
    let mut names: Vec<&str> = tests.iter().map(|t| t.name()).collect();
    let before = names.len();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), before, "duplicate canonical test names");
    // Duplicate *shapes* under different names would also defeat the
    // canonical ordering; the printed form (threads, scope tree, memory,
    // condition) must be unique too once the name line is dropped.
    let mut shapes: Vec<String> = tests
        .iter()
        .map(|t| {
            let s = t.to_string();
            s.splitn(3, '\n').nth(2).unwrap_or(&s).to_owned()
        })
        .collect();
    let before = shapes.len();
    shapes.sort_unstable();
    shapes.dedup();
    assert_eq!(shapes.len(), before, "structurally duplicate tests");
}

#[test]
fn paper_family_is_bit_identical_across_calls() {
    let a = paper_family();
    let b = generate(&GenConfig::paper());
    assert_eq!(a.len(), b.len());
    // LitmusTest is structural PartialEq: this compares every thread,
    // instruction, scope tree, memory cell, and condition.
    assert!(a == &b[..], "generate(paper) is not deterministic");
}

#[test]
fn families_are_canonically_ordered() {
    let small = generate(&GenConfig::small());
    assert!(
        small.windows(2).all(|w| w[0].name() < w[1].name()),
        "small family is not in strict canonical (name-sorted) order"
    );
    let paper = paper_family();
    assert!(
        paper.windows(2).all(|w| w[0].name() < w[1].name()),
        "paper family is not in strict canonical (name-sorted) order"
    );
}

#[test]
fn family_lookup_by_name() {
    assert!(GenConfig::named("small").is_some());
    assert!(GenConfig::named("paper").is_some());
    assert!(GenConfig::named("huge").is_none());
    assert!(GenConfig::named("").is_none());
    for name in GenConfig::FAMILY_NAMES {
        assert!(GenConfig::named(name).is_some(), "unknown family {name}");
    }
    // The paper family is strictly larger than the small one.
    let small = generate(&GenConfig::named("small").unwrap());
    assert!(paper_family().len() > small.len());
}
