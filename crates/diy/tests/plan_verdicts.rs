//! Corpus-wide differential assertion for the compiled-plan refactor:
//! over the whole `small` generated family, the per-test model verdicts
//! ([`ModelOutcomes`]) computed through the compiled plan must be
//! **bit-identical** to the legacy tree-walking interpreter's — same
//! outcome sets, same counts, same witness flag, for every test.

use weakgpu_axiom::enumerate::{model_outcomes, EnumConfig};
use weakgpu_axiom::{CatModel, Execution, Model};
use weakgpu_diy::{generate, GenConfig};
use weakgpu_models::{ptx_model, sc_model};

/// The differential oracle: the same `.cat` model evaluated through the
/// retained tree-walking interpreter instead of the compiled plan.
struct TreeWalk(CatModel);

impl Model for TreeWalk {
    fn name(&self) -> &str {
        Model::name(&self.0)
    }

    fn allows(&self, exec: &Execution) -> bool {
        self.0
            .allows_tree_walk(exec)
            .unwrap_or_else(|e| panic!("oracle failed to evaluate: {e}"))
    }
}

#[test]
fn small_family_verdicts_bit_identical_to_tree_walk() {
    let family = generate(&GenConfig::small());
    assert!(!family.is_empty());
    let cfg = EnumConfig::default();
    for (model, oracle) in [
        (ptx_model(), TreeWalk(ptx_model())),
        (sc_model(), TreeWalk(sc_model())),
    ] {
        for test in &family {
            let planned = model_outcomes(test, &model, &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
            let walked = model_outcomes(test, &oracle, &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
            assert_eq!(
                planned,
                walked,
                "{} under {}: plan and tree-walk verdicts diverge",
                test.name(),
                Model::name(&model)
            );
        }
    }
}
