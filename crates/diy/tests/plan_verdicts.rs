//! Corpus-wide differential assertions for the axiomatic engine's two
//! big refactors, over the whole `small` generated family:
//!
//! * **plan vs tree-walk** — per-test [`ModelOutcomes`] computed through
//!   the compiled plan must be bit-identical to the legacy tree-walking
//!   interpreter's;
//! * **streaming vs materialised** — the skeleton/overlay streaming
//!   enumerator behind [`model_outcomes`] must agree bit-for-bit with
//!   judging a fully materialised `Vec<Candidate>` candidate by
//!   candidate.

use std::sync::Arc;

use weakgpu_axiom::enumerate::{enumerate_executions, model_outcomes, EnumConfig, ModelOutcomes};
use weakgpu_axiom::plan::EvalContext;
use weakgpu_axiom::{CatModel, Execution, Model};
use weakgpu_diy::{generate, GenConfig};
use weakgpu_litmus::LitmusTest;
use weakgpu_models::{ptx_model, sc_model};

/// The differential oracle: the same `.cat` model evaluated through the
/// retained tree-walking interpreter instead of the compiled plan.
struct TreeWalk(Arc<CatModel>);

impl Model for TreeWalk {
    fn name(&self) -> &str {
        Model::name(&*self.0)
    }

    fn allows(&self, exec: &Execution) -> bool {
        self.0
            .allows_tree_walk(exec)
            .unwrap_or_else(|e| panic!("oracle failed to evaluate: {e}"))
    }
}

/// The pre-streaming judgement loop: materialise every candidate, judge
/// each owned [`Execution`] through the plan's execution entry point.
/// Kept as the oracle for the streaming visitor.
fn materialised_outcomes(test: &LitmusTest, model: &dyn Model, cfg: &EnumConfig) -> ModelOutcomes {
    let candidates = enumerate_executions(test, cfg).unwrap();
    let mut ctx = EvalContext::new();
    let mut all = std::collections::BTreeSet::new();
    let mut allowed = std::collections::BTreeSet::new();
    let mut num_allowed = 0;
    let mut witnessed = false;
    for c in &candidates {
        all.insert(c.outcome.clone());
        if model.allows_with(&mut ctx, &c.execution) {
            num_allowed += 1;
            if test.cond().witnessed_by(&c.outcome) {
                witnessed = true;
            }
            allowed.insert(c.outcome.clone());
        }
    }
    ModelOutcomes {
        all_outcomes: all,
        allowed_outcomes: allowed,
        num_candidates: candidates.len(),
        num_allowed,
        condition_witnessed: witnessed,
    }
}

#[test]
fn small_family_verdicts_bit_identical_to_tree_walk() {
    let family = generate(&GenConfig::small());
    assert!(!family.is_empty());
    let cfg = EnumConfig::default();
    for (model, oracle) in [
        (ptx_model(), TreeWalk(ptx_model())),
        (sc_model(), TreeWalk(sc_model())),
    ] {
        for test in &family {
            let planned = model_outcomes(test, &model, &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
            let walked = model_outcomes(test, &oracle, &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
            assert_eq!(
                planned,
                walked,
                "{} under {}: plan and tree-walk verdicts diverge",
                test.name(),
                Model::name(&model)
            );
        }
    }
}

#[test]
fn small_family_streaming_matches_materialised_enumeration() {
    let family = generate(&GenConfig::small());
    assert!(!family.is_empty());
    let cfg = EnumConfig::default();
    for model in [ptx_model(), sc_model()] {
        for test in &family {
            let streamed = model_outcomes(test, &model, &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
            let materialised = materialised_outcomes(test, &model, &cfg);
            assert_eq!(
                streamed,
                materialised,
                "{} under {}: streaming and materialised verdicts diverge",
                test.name(),
                Model::name(&model)
            );
        }
    }
}
