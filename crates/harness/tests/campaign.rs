//! Integration tests for the campaign engine and the harness's
//! machine-independence guarantee: for a fixed seed, histograms are a
//! pure function of the cell spec — independent of worker count, host
//! core count, and whether cells run alone or batched in a campaign.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use weakgpu_harness::campaign::{run_campaign, run_campaign_with, CampaignConfig, CellSpec};
use weakgpu_harness::runner::{run_test, RunConfig};
use weakgpu_litmus::{corpus, LitmusTest, ThreadScope};
use weakgpu_sim::chip::{Chip, Incantations};

fn config(parallelism: Option<usize>) -> RunConfig {
    RunConfig {
        iterations: 4_000,
        incantations: Incantations::best_inter_cta(),
        seed: 0xdead_5eed,
        parallelism,
    }
}

#[test]
fn histograms_identical_across_parallelism() {
    // The headline bugfix: 1, 4, 16 and "all cores" workers must produce
    // the same histogram bit for bit, because RNG streams derive from
    // seed-indexed logical chunks, never from the worker layout.
    let test = corpus::mp(ThreadScope::InterCta, None);
    let baseline = run_test(&test, Chip::GtxTitan, &config(Some(1))).unwrap();
    assert!(baseline.witnesses > 0, "mp must be weak on the Titan");
    for par in [Some(4), Some(16), None] {
        let r = run_test(&test, Chip::GtxTitan, &config(par)).unwrap();
        assert_eq!(
            baseline.histogram, r.histogram,
            "histogram differs at parallelism {par:?}"
        );
        assert_eq!(baseline.witnesses, r.witnesses);
    }
}

#[test]
fn campaign_matches_sequential_run_test() {
    // One campaign over 3 corpus tests × 2 chips must reproduce exactly
    // what running each cell alone through run_test produces.
    let tests: [LitmusTest; 3] = [
        corpus::mp(ThreadScope::InterCta, None),
        corpus::sb(ThreadScope::InterCta, None),
        corpus::lb(ThreadScope::InterCta, None),
    ];
    let chips = [Chip::GtxTitan, Chip::Gtx280];
    let cfg = config(None);

    let cells: Vec<CellSpec> = tests
        .iter()
        .flat_map(|t| {
            chips
                .iter()
                .map(|&c| CellSpec::from_config(t.clone(), c, &cfg))
        })
        .collect();
    let campaign = run_campaign(&cells, &CampaignConfig::default()).unwrap();
    assert_eq!(campaign.len(), 6);

    let mut i = 0;
    for test in &tests {
        for &chip in &chips {
            let solo = run_test(test, chip, &cfg).unwrap();
            assert_eq!(campaign[i].test, solo.test);
            assert_eq!(campaign[i].chip, chip);
            assert_eq!(
                campaign[i].histogram, solo.histogram,
                "campaign vs sequential mismatch for {} on {chip}",
                solo.test
            );
            assert_eq!(campaign[i].witnesses, solo.witnesses);
            i += 1;
        }
    }
}

#[test]
fn campaign_results_independent_of_worker_count() {
    let cells: Vec<CellSpec> = [Chip::GtxTitan, Chip::TeslaC2075]
        .into_iter()
        .map(|chip| {
            CellSpec::new(corpus::corr(), chip)
                .iterations(3_000)
                .seed(42)
        })
        .collect();
    let one = run_campaign(&cells, &CampaignConfig::with_parallelism(1)).unwrap();
    let many = run_campaign(&cells, &CampaignConfig::with_parallelism(16)).unwrap();
    for (a, b) in one.iter().zip(&many) {
        assert_eq!(a.histogram, b.histogram);
    }
}

#[test]
fn progress_streams_each_cell_exactly_once() {
    let cells: Vec<CellSpec> = Chip::TABLED
        .into_iter()
        .map(|chip| CellSpec::new(corpus::sb(ThreadScope::InterCta, None), chip).iterations(500))
        .collect();
    let seen = Mutex::new(Vec::new());
    let calls = AtomicUsize::new(0);
    let reports = run_campaign_with(&cells, &CampaignConfig::default(), |idx, report| {
        calls.fetch_add(1, Ordering::Relaxed);
        seen.lock().unwrap().push((idx, report.histogram.total()));
    })
    .unwrap();
    assert_eq!(calls.load(Ordering::Relaxed), cells.len());
    let mut seen = seen.into_inner().unwrap();
    seen.sort_unstable();
    let expected: Vec<(usize, u64)> = (0..cells.len()).map(|i| (i, 500)).collect();
    assert_eq!(seen, expected);
    assert_eq!(reports.len(), cells.len());
}

#[test]
fn zero_iteration_cells_complete_empty() {
    let cells = [
        CellSpec::new(corpus::corr(), Chip::GtxTitan).iterations(0),
        CellSpec::new(corpus::corr(), Chip::GtxTitan).iterations(100),
    ];
    let reports = run_campaign(&cells, &CampaignConfig::default()).unwrap();
    assert_eq!(reports[0].histogram.total(), 0);
    assert_eq!(reports[0].witnesses, 0);
    assert_eq!(reports[1].histogram.total(), 100);
}

#[test]
fn shared_simulator_cache_keeps_cells_independent() {
    // Two cells over the same (test, chip) at different incantations
    // share a compiled Simulator but get their own weights and streams.
    let test = corpus::mp(ThreadScope::InterCta, None);
    let weak = CellSpec::new(test.clone(), Chip::GtxTitan)
        .incantations(Incantations::best_inter_cta())
        .iterations(5_000);
    let strong = CellSpec::new(test, Chip::GtxTitan)
        .incantations(Incantations::none())
        .iterations(5_000);
    let reports = run_campaign(&[weak, strong], &CampaignConfig::default()).unwrap();
    assert!(reports[0].witnesses > 0, "incantations must provoke mp");
    assert_eq!(reports[1].witnesses, 0, "no incantations, no weakness");
}
