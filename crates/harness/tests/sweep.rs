//! Integration tests for the sharded validation sweep: partition
//! correctness over the real generated families, shard/merge identity
//! with an unsharded run, and the model-verdict cache's bookkeeping.

use std::sync::Mutex;

use weakgpu_diy::{generate, GenConfig};
use weakgpu_harness::sweep::{run_sweep, run_sweep_with, Shard, SweepConfig, SweepReport};
use weakgpu_sim::chip::Chip;

fn small_cfg(shard: Option<Shard>) -> SweepConfig {
    SweepConfig {
        family: "small".to_owned(),
        shard,
        chips: vec![Chip::GtxTitan, Chip::Gtx280],
        iterations: 300,
        seed: 0xabcd,
        parallelism: None,
        pruning: false,
        batching: false,
        incremental: false,
        cache_file: None,
        cache_readonly: false,
    }
}

#[test]
fn shard_partitions_cover_the_paper_family_exactly() {
    // Satellite requirement: for N in {1, 2, 4, 7} the shards are
    // disjoint and cover the family exactly. Checked on the real paper
    // family via the same selection the sweep uses.
    let family = generate(&GenConfig::paper());
    for count in [1usize, 2, 4, 7] {
        let mut owner = vec![0usize; family.len()];
        let mut sizes = Vec::new();
        for index in 1..=count {
            let shard = Shard { index, count };
            let mine: Vec<usize> = (0..family.len()).filter(|&i| shard.selects(i)).collect();
            for &i in &mine {
                owner[i] += 1;
            }
            sizes.push(mine.len());
        }
        assert!(
            owner.iter().all(|&n| n == 1),
            "{count} shards: some test owned {:?} times",
            owner.iter().filter(|&&n| n != 1).collect::<Vec<_>>()
        );
        assert_eq!(sizes.iter().sum::<usize>(), family.len());
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "{count} shards unbalanced: {sizes:?}");
    }
}

#[test]
fn merged_shards_match_unsharded_run() {
    // The acceptance criterion at small scale: run the family in 4
    // shards and unsharded at the same seed; the merged report's totals
    // must be identical.
    let family = generate(&GenConfig::small());
    let whole = run_sweep(&family, &small_cfg(None)).unwrap();
    let shards: Vec<SweepReport> = (1..=4)
        .map(|index| run_sweep(&family, &small_cfg(Some(Shard { index, count: 4 }))).unwrap())
        .collect();
    // Shards are proper subsets.
    for s in &shards {
        assert!(s.tests_run < whole.tests_run);
        assert!(s.total_runs < whole.total_runs);
    }
    let merged = SweepReport::merge(&shards).unwrap();
    assert!(
        merged.totals_match(&whole),
        "merged != unsharded:\n{}\nvs\n{}",
        merged.to_json(),
        whole.to_json()
    );
    // And the JSON forms agree on everything but the cache statistics.
    let mut whole_adjusted = whole.clone();
    whole_adjusted.cache = merged.cache;
    assert_eq!(merged.to_json(), whole_adjusted.to_json());
}

#[test]
fn sweep_reports_are_model_sound_and_witness_weak_behaviour() {
    let family = generate(&GenConfig::small());
    let cfg = SweepConfig {
        family: "small".to_owned(),
        shard: None,
        chips: vec![Chip::GtxTitan],
        iterations: 1_000,
        seed: 0x7a11,
        parallelism: None,
        pruning: false,
        batching: false,
        incremental: false,
        cache_file: None,
        cache_readonly: false,
    };
    let records = Mutex::new(Vec::new());
    let report = run_sweep_with(&family, &cfg, |rec| {
        records.lock().unwrap().push(rec.clone());
    })
    .unwrap();
    // Sec. 5.4's claim at test scale: every observation is PTX-allowed.
    assert!(report.is_sound(), "unsound cells: {:?}", report.unsound);
    // The family actually exercises weak behaviour on Kepler.
    assert!(
        report.weak_tests > 5,
        "only {} tests witnessed weakly",
        report.weak_tests
    );
    // Streaming callback saw every cell exactly once.
    let records = records.into_inner().unwrap();
    assert_eq!(records.len() as u64, report.cells);
    assert_eq!(report.cells, report.tests_run);
    // Single-chip sweep: every shape is looked up exactly once, so no
    // publish race is possible — misses are exact and nothing hits.
    assert_eq!(report.cache.misses, report.tests_run);
    assert_eq!(report.cache.hits, 0);
    assert_eq!(report.cache.entries, report.tests_run);
    // Totals agree between the streamed records and the aggregate.
    let runs: u64 = records.iter().map(|r| r.runs).sum();
    assert_eq!(runs, report.total_runs);
    let witnesses: u64 = records.iter().map(|r| r.witnesses).sum();
    assert_eq!(witnesses, report.total_witnesses);
}

#[test]
fn verdict_cache_collapses_chip_columns() {
    // With C chips, each test shape is enumerated roughly once (two
    // chips of one test completing simultaneously may both enumerate —
    // first publish wins) and the remaining cells hit the cache.
    let family: Vec<_> = generate(&GenConfig::small()).into_iter().take(24).collect();
    let cfg = SweepConfig {
        family: "small-prefix".to_owned(),
        shard: None,
        chips: Chip::NVIDIA_TABLED.to_vec(),
        iterations: 50,
        seed: 1,
        parallelism: None,
        pruning: false,
        batching: false,
        incremental: false,
        cache_file: None,
        cache_readonly: false,
    };
    let report = run_sweep(&family, &cfg).unwrap();
    let chips = Chip::NVIDIA_TABLED.len() as u64;
    assert_eq!(report.cache.entries, 24);
    assert!(report.cache.misses >= 24, "{:?}", report.cache);
    assert_eq!(report.cache.hits + report.cache.misses, 24 * chips);
    // The cache must still collapse the bulk of the column lookups.
    assert!(
        report.cache.hits > 24 * (chips - 2),
        "cache ineffective: {:?}",
        report.cache
    );
}

#[test]
fn strong_chip_never_witnesses_any_generated_cycle() {
    // GTX 280 is the paper's one fully strong chip: zero witnesses over
    // the whole generated family.
    let family = generate(&GenConfig::small());
    let cfg = SweepConfig {
        family: "small".to_owned(),
        shard: None,
        chips: vec![Chip::Gtx280],
        iterations: 400,
        seed: 0x57,
        parallelism: None,
        pruning: false,
        batching: false,
        incremental: false,
        cache_file: None,
        cache_readonly: false,
    };
    let report = run_sweep(&family, &cfg).unwrap();
    assert_eq!(
        report.total_witnesses, 0,
        "GTX 280 must behave sequentially"
    );
    assert_eq!(report.weak_tests, 0);
    assert!(report.is_sound());
}

#[test]
fn pruned_sweep_is_bit_identical_to_the_exhaustive_sweep() {
    // Threading `SweepConfig::pruning` through the workers must change
    // bookkeeping only: same seeds, same histograms, same verdicts —
    // every cell record agrees once the pruning counters and cache
    // bookkeeping are normalised.
    let family: Vec<_> = generate(&GenConfig::small()).into_iter().take(30).collect();
    let collect = |pruning, incremental| {
        let mut cfg = small_cfg(None);
        cfg.pruning = pruning;
        cfg.incremental = incremental;
        let records = Mutex::new(Vec::new());
        let report = run_sweep_with(&family, &cfg, |rec| {
            records.lock().unwrap().push(rec.clone());
        })
        .unwrap();
        let mut recs = records.into_inner().unwrap();
        recs.sort_by_key(|a| (a.index, a.chip.clone()));
        (report, recs)
    };
    let (ex_report, mut exhaustive) = collect(false, false);
    let (pr_report, mut pruned) = collect(true, false);
    // `incremental` implies the tree walk, so pruning need not be set.
    let (inc_report, mut incremental) = collect(false, true);
    for r in [&pr_report, &inc_report] {
        assert_eq!(ex_report.is_sound(), r.is_sound());
        assert_eq!(ex_report.total_witnesses, r.total_witnesses);
        assert_eq!(ex_report.weak_tests, r.weak_tests);
    }
    // Miss cells really went through the counted enumeration, and the
    // exhaustive arm never cuts.
    assert!(pruned.iter().any(|r| r.classes_visited > 0));
    assert!(exhaustive.iter().all(|r| r.candidates_pruned == 0));
    // The delta journal keeps the walk's register tier alive across
    // path moves: the incremental arm must refill no more often than
    // the from-scratch walk over the identical family.
    assert!(inc_report.cache.registers_refilled <= pr_report.cache.registers_refilled);
    for r in exhaustive
        .iter_mut()
        .chain(pruned.iter_mut())
        .chain(incremental.iter_mut())
    {
        r.cache_hits = 0;
        r.cache_misses = 0;
        r.enum_micros = 0;
        r.classes_visited = 0;
        r.candidates_pruned = 0;
        r.cut_attempt_micros = 0;
        r.registers_refilled = 0;
    }
    assert_eq!(exhaustive, pruned);
    assert_eq!(exhaustive, incremental);
}

#[test]
fn unsorted_family_is_rejected() {
    let mut family = generate(&GenConfig::small());
    family.swap(0, 1);
    let err = run_sweep(&family, &small_cfg(None)).unwrap_err();
    assert!(err.to_string().contains("canonical order"), "{err}");
}

#[test]
fn sharded_cells_equal_their_unsharded_counterparts() {
    // Stronger than totals: each shard's per-cell records must be
    // bit-identical to the corresponding cells of the unsharded run
    // (same per-test seeds, thus same histograms).
    let family: Vec<_> = generate(&GenConfig::small()).into_iter().take(30).collect();
    let collect = |shard| {
        let records = Mutex::new(Vec::new());
        run_sweep_with(&family, &small_cfg(shard), |rec| {
            records.lock().unwrap().push(rec.clone());
        })
        .unwrap();
        let mut recs = records.into_inner().unwrap();
        // Cache counters and enumeration timing are bookkeeping, not
        // semantics: they depend on completion order and wall clock, so
        // normalise them before the bit-identity comparison.
        for r in &mut recs {
            r.cache_hits = 0;
            r.cache_misses = 0;
            r.enum_micros = 0;
            r.classes_visited = 0;
            r.candidates_pruned = 0;
            r.cut_attempt_micros = 0;
            r.registers_refilled = 0;
        }
        recs.sort_by_key(|a| (a.index, a.chip.clone()));
        recs
    };
    let whole = collect(None);
    let mut sharded = Vec::new();
    for index in 1..=3 {
        sharded.extend(collect(Some(Shard { index, count: 3 })));
    }
    sharded.sort_by_key(|a| (a.index, a.chip.clone()));
    assert_eq!(whole, sharded);
}

#[test]
fn warm_cache_run_is_bit_identical_to_cold() {
    // The persistent-cache acceptance criterion at small scale: a cold
    // run persists its verdict cache; a warm run restored from that
    // file must re-derive nothing (0 misses, every hit warm) and report
    // bit-identically in every semantic field.
    let family: Vec<_> = generate(&GenConfig::small()).into_iter().take(40).collect();
    let dir = std::env::temp_dir().join(format!("weakgpu-sweep-warm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("verdicts.wgc");

    let cold_cfg = SweepConfig {
        cache_file: Some(path.clone()),
        ..small_cfg(None)
    };
    let cold = run_sweep(&family, &cold_cfg).unwrap();
    assert_eq!(cold.cache.warm_entries, 0, "nothing preloaded on disk yet");
    assert_eq!(cold.cache.misses as usize, family.len());

    let warm_cfg = SweepConfig {
        cache_file: Some(path.clone()),
        cache_readonly: true,
        ..small_cfg(None)
    };
    let warm = run_sweep(&family, &warm_cfg).unwrap();
    assert_eq!(warm.cache.misses, 0, "warm run must not re-enumerate");
    assert_eq!(warm.cache.warm_entries as usize, family.len());
    assert_eq!(warm.cache.warm_hits, warm.cache.hits);
    assert!(warm.cache.warm_hits > 0);
    assert!(warm.totals_match(&cold));
    // Field-for-field identity outside the cache statistics.
    let mut cold_adjusted = cold.clone();
    cold_adjusted.cache = warm.cache;
    assert_eq!(warm.to_json(), cold_adjusted.to_json());

    // A read-only warm start with no file is an error, not a silent
    // cold run.
    std::fs::remove_file(&path).unwrap();
    let err = run_sweep(&family, &warm_cfg).unwrap_err();
    assert!(err.to_string().contains("read-only cache file"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
