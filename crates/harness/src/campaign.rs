//! The campaign engine: many `(test, chip, incantations)` cells — the
//! paper's unit of measurement, one `obs/100k` number each — scheduled
//! over a single shared worker pool.
//!
//! Where [`run_test`](crate::runner::run_test) spawns a thread scope per
//! cell, a campaign compiles every distinct `(test, chip)` pair once,
//! splits each cell into the same machine-independent seed-derived chunks
//! `run_test` uses (see [`runner::STREAM_CHUNKS`](crate::runner)), and
//! lets one pool of workers drain the whole chunk queue. Workers keep a
//! reusable [`MachineState`] per simulator, so iterations are amortised:
//! no per-run allocation, no per-run `FinalExpr` cloning.
//!
//! Determinism: each chunk's RNG stream is a pure function of the cell's
//! seed and the chunk index, and chunk histograms are merged by
//! commutative addition — so a campaign's reports are bit-identical for a
//! fixed seed regardless of worker count, scheduling, or host machine,
//! and identical to running each cell alone through `run_test`.
//!
//! Progress callbacks run on the worker threads. A callback that judges
//! cells against an axiomatic model (as the sweep's does) should keep
//! one `weakgpu_axiom::plan::EvalContext` per worker — e.g. in a
//! `thread_local!` — so repeated verdicts reuse one evaluation arena;
//! see `crate::sweep` for the pattern.
//!
//! ```
//! use weakgpu_harness::campaign::{run_campaign, CampaignConfig, CellSpec};
//! use weakgpu_litmus::corpus;
//! use weakgpu_sim::chip::{Chip, Incantations};
//!
//! let cells = vec![
//!     CellSpec::new(corpus::corr(), Chip::GtxTitan).iterations(2_000),
//!     CellSpec::new(corpus::corr(), Chip::Gtx280).iterations(2_000),
//! ];
//! let reports = run_campaign(&cells, &CampaignConfig::default()).unwrap();
//! assert!(reports[0].witnesses > 0); // Kepler coRR (Fig. 1)
//! assert_eq!(reports[1].witnesses, 0); // GTX 280 stays strong
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use weakgpu_litmus::{LitmusTest, ThreadScope};
use weakgpu_sim::chip::{Chip, Incantations, RunWeights};
use weakgpu_sim::machine::{MachineState, ObsCounts, Simulator};

use crate::histogram::Histogram;
use crate::runner::{chunk_seed, chunk_sizes, HarnessError, RunConfig, TestReport};

/// The paper's "most effective incantations" for a test's placement:
/// the best inter-CTA column for inter-CTA tests, everything on for
/// intra-CTA (the choice behind every figure's default column).
pub fn default_incantations(test: &LitmusTest) -> Incantations {
    match test.thread_scope() {
        Some(ThreadScope::InterCta) => Incantations::best_inter_cta(),
        _ => Incantations::all_on(),
    }
}

/// One campaign cell: a litmus test bound to a chip and incantation
/// combination, with its own iteration count and base seed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CellSpec {
    /// The litmus test to run.
    pub test: LitmusTest,
    /// The chip profile to run it on.
    pub chip: Chip,
    /// Incantation combination.
    pub incantations: Incantations,
    /// Number of runs (the paper uses 100 000 per cell).
    pub iterations: usize,
    /// Base RNG seed; chunk streams derive from it machine-independently.
    pub seed: u64,
}

impl CellSpec {
    /// A cell with the default harness configuration (100k iterations,
    /// all incantations, the default seed).
    pub fn new(test: LitmusTest, chip: Chip) -> Self {
        let d = RunConfig::default();
        CellSpec {
            test,
            chip,
            incantations: d.incantations,
            iterations: d.iterations,
            seed: d.seed,
        }
    }

    /// A cell mirroring `cfg` — running it in a campaign produces the
    /// same report `run_test(test, chip, cfg)` would.
    pub fn from_config(test: LitmusTest, chip: Chip, cfg: &RunConfig) -> Self {
        CellSpec {
            test,
            chip,
            incantations: cfg.incantations,
            iterations: cfg.iterations,
            seed: cfg.seed,
        }
    }

    /// Sets the incantation combination.
    #[must_use]
    pub fn incantations(mut self, inc: Incantations) -> Self {
        self.incantations = inc;
        self
    }

    /// Sets the iteration count.
    #[must_use]
    pub fn iterations(mut self, n: usize) -> Self {
        self.iterations = n;
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Campaign-wide knobs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CampaignConfig {
    /// Worker threads (`None` = all available cores). Affects wall-clock
    /// time only, never results.
    pub parallelism: Option<usize>,
}

impl CampaignConfig {
    /// A config with an explicit worker count.
    pub fn with_parallelism(workers: usize) -> Self {
        CampaignConfig {
            parallelism: Some(workers),
        }
    }
}

/// A chunk of one cell's iterations: the scheduling unit of the pool.
struct WorkItem {
    cell: usize,
    len: usize,
    seed: u64,
}

/// Per-cell accumulation shared between workers.
struct CellAcc {
    histogram: Mutex<Histogram>,
    remaining: AtomicUsize,
}

/// Runs every cell and returns one [`TestReport`] per cell, in cell
/// order. Results are bit-identical for fixed cell specs regardless of
/// `cfg.parallelism` or the host's core count.
///
/// # Errors
///
/// Returns the first compile or run error encountered; remaining work is
/// abandoned.
pub fn run_campaign(
    cells: &[CellSpec],
    cfg: &CampaignConfig,
) -> Result<Vec<TestReport>, HarnessError> {
    run_campaign_with(cells, cfg, |_, _| {})
}

/// Like [`run_campaign`], additionally invoking `progress(cell_index,
/// report)` as each cell completes — cells finish out of order, so the
/// callback must be thread-safe. The callback sees each cell exactly
/// once, before the final result vector is assembled.
///
/// # Errors
///
/// See [`run_campaign`].
pub fn run_campaign_with<F>(
    cells: &[CellSpec],
    cfg: &CampaignConfig,
    progress: F,
) -> Result<Vec<TestReport>, HarnessError>
where
    F: Fn(usize, &TestReport) + Sync,
{
    // Compile each distinct (test, chip) pair once. Cells referencing the
    // same pair (e.g. the same test at several incantation columns) share
    // one Simulator. Buckets are keyed by (name, chip) for O(cells)
    // lookup, with a structural-equality check inside the bucket so two
    // different tests that happen to share a name never share a sim.
    let mut sims: Vec<Simulator> = Vec::new();
    let mut sim_rep: Vec<usize> = Vec::new(); // cell that compiled sims[i]
    let mut by_key: HashMap<(&str, Chip), Vec<usize>> = HashMap::new();
    let mut sim_of_cell: Vec<usize> = Vec::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        let bucket = by_key.entry((cell.test.name(), cell.chip)).or_default();
        let idx = match bucket
            .iter()
            .copied()
            .find(|&s| cells[sim_rep[s]].test == cell.test)
        {
            Some(s) => s,
            None => {
                sims.push(Simulator::compile(&cell.test, cell.chip)?);
                sim_rep.push(i);
                bucket.push(sims.len() - 1);
                sims.len() - 1
            }
        };
        sim_of_cell.push(idx);
    }
    let weights: Vec<RunWeights> = cells
        .iter()
        .map(|c| c.chip.profile().weights(&c.incantations))
        .collect();

    // Flatten every cell into seed-derived chunks (cell-major, so a
    // worker's cached MachineState stays hot across consecutive items).
    let mut items: Vec<WorkItem> = Vec::new();
    let accs: Vec<CellAcc> = cells
        .iter()
        .enumerate()
        .map(|(ci, cell)| {
            let sizes = chunk_sizes(cell.iterations);
            for (k, len) in sizes.iter().copied().enumerate() {
                items.push(WorkItem {
                    cell: ci,
                    len,
                    seed: chunk_seed(cell.seed, k),
                });
            }
            CellAcc {
                histogram: Mutex::new(Histogram::new()),
                remaining: AtomicUsize::new(sizes.len()),
            }
        })
        .collect();

    let results: Vec<Mutex<Option<TestReport>>> = cells.iter().map(|_| Mutex::new(None)).collect();

    // Zero-iteration cells have no chunks; complete them up front.
    for (ci, cell) in cells.iter().enumerate() {
        if cell.iterations == 0 {
            let report = finish_cell(cell, Histogram::new());
            progress(ci, &report);
            *results[ci].lock().expect("no poisoned locks") = Some(report);
        }
    }

    let workers = cfg
        .parallelism
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(items.len().max(1));

    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let error: Mutex<Option<HarnessError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // The worker's reusable run state, tagged with the
                // simulator it was sized for. Chunks are cell-major, so
                // this almost always hits.
                let mut cached: Option<(usize, MachineState)> = None;
                let mut counts = ObsCounts::new();
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let cell = &cells[item.cell];
                    let si = sim_of_cell[item.cell];
                    let sim = &sims[si];
                    if !matches!(&cached, Some((idx, _)) if *idx == si) {
                        cached = Some((si, sim.new_state()));
                    }
                    let (_, state) = cached.as_mut().expect("just ensured");

                    let mut rng = SmallRng::seed_from_u64(item.seed);
                    counts.clear();
                    if let Err(e) = sim.run_batch(
                        item.len,
                        &weights[item.cell],
                        cell.incantations.thread_rand,
                        &mut rng,
                        state,
                        &mut counts,
                    ) {
                        let mut slot = error.lock().expect("no poisoned locks");
                        slot.get_or_insert(HarnessError::Run(e));
                        abort.store(true, Ordering::Relaxed);
                        break;
                    }

                    let acc = &accs[item.cell];
                    {
                        let mut h = acc.histogram.lock().expect("no poisoned locks");
                        for (obs, n) in counts.iter() {
                            h.add(sim.outcome_from_obs(obs), n);
                        }
                    }
                    if acc.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        let histogram =
                            std::mem::take(&mut *acc.histogram.lock().expect("no poisoned locks"));
                        let report = finish_cell(cell, histogram);
                        progress(item.cell, &report);
                        *results[item.cell].lock().expect("no poisoned locks") = Some(report);
                    }
                }
            });
        }
    });

    if let Some(e) = error.into_inner().expect("no poisoned locks") {
        return Err(e);
    }
    Ok(results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned locks")
                .expect("every cell completed")
        })
        .collect())
}

fn finish_cell(cell: &CellSpec, histogram: Histogram) -> TestReport {
    let witnesses = histogram.witnesses(cell.test.cond());
    TestReport {
        test: cell.test.name().to_owned(),
        chip: cell.chip,
        incantations: cell.incantations,
        histogram,
        witnesses,
    }
}
