//! The litmus-testing harness (paper Sec. 4): run a test many times on a
//! simulated chip under chosen incantations, histogram the outcomes, and
//! compare observations against a memory model.
//!
//! ```
//! use weakgpu_harness::{RunConfig, run_test};
//! use weakgpu_sim::chip::{Chip, Incantations};
//! use weakgpu_litmus::corpus;
//!
//! let cfg = RunConfig {
//!     iterations: 2_000,
//!     incantations: Incantations::all_on(),
//!     seed: 7,
//!     ..RunConfig::default()
//! };
//! let report = run_test(&corpus::corr(), Chip::GtxTitan, &cfg).unwrap();
//! assert_eq!(report.histogram.total(), 2_000);
//! // Kepler exhibits read-read coherence violations (Fig. 1).
//! assert!(report.witnesses > 0);
//! ```

pub mod campaign;
pub mod histogram;
pub mod json;
pub mod report;
pub mod runner;
pub mod serve;
pub mod soundness;
pub mod sweep;
pub mod tuning;

pub use campaign::{
    default_incantations, run_campaign, run_campaign_with, CampaignConfig, CellSpec,
};
pub use histogram::Histogram;
pub use report::ObsTable;
pub use runner::{run_test, RunConfig, TestReport, STREAM_CHUNKS};
pub use serve::{serve, ServeConfig, ServeSummary};
pub use soundness::{check_soundness, check_soundness_with, SoundnessReport};
pub use sweep::{
    run_sweep, run_sweep_with, CellRecord, Shard, SweepConfig, SweepError, SweepReport,
};
pub use tuning::{tune, TuningReport};
