//! A minimal JSON reader/writer for the sweep report format.
//!
//! The workspace builds offline (no serde); sweep reports need exactly
//! one schema, so this module implements just enough of RFC 8259 to
//! round-trip it: objects, arrays, strings with escapes, integers (the
//! schema has no floats, but a fractional part still parses), booleans
//! and null. Unsigned-integer tokens that fit `u64` are kept exact
//! ([`Json::UInt`]) — seeds use the full 64-bit range, beyond what `f64`
//! represents — and everything else numeric falls back to `f64`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer token that fits `u64`, kept exact.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is normalised (sorted); the sweep schema
    /// never relies on member order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            // 2^53: the largest power of two below which every integer
            // is exactly representable in f64.
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// `true` iff this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Escapes `s` as a JSON string literal (including the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {}, found {:?}",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or '}}' at byte {}, found {other:?}",
                            *pos
                        ))
                    }
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    other => {
                        return Err(format!(
                            "expected ',' or ']' at byte {}, found {other:?}",
                            *pos
                        ))
                    }
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    // Digits-only tokens stay exact: u64 seeds exceed f64's 2^53
    // integer range.
    if text.bytes().all(|c| c.is_ascii_digit()) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs never arise in our own output;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::UInt(42));
        assert_eq!(parse("-7").unwrap(), Json::Num(-7.0));
        assert_eq!(parse("2.5").unwrap(), Json::Num(2.5));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}, null], "c": true}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
        assert!(arr[2].is_null());
    }

    #[test]
    fn escape_roundtrips() {
        for s in [
            "plain",
            "with \"quotes\"",
            "back\\slash",
            "tab\there\nnewline",
            "1:r1=0; ",
        ] {
            let parsed = parse(&escape(s)).unwrap();
            assert_eq!(parsed.as_str(), Some(s), "{s:?}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("true false").is_err());
        assert!(parse("{1: 2}").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn u64_bounds() {
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        // Above f64's exact-integer range: must round-trip exactly.
        assert_eq!(
            parse("9007199254740993").unwrap().as_u64(),
            Some((1 << 53) + 1)
        );
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
        // Too large even for u64: falls back to f64, loses as_u64.
        assert_eq!(parse("18446744073709551616").unwrap().as_u64(), None);
    }
}
