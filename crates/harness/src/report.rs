//! Paper-style observation tables: rows of `obs/100k` counts across chips
//! (the format of Figs. 1–11) or across incantation columns (Tab. 6).

use std::fmt;

/// A simple text table with a label column followed by data columns.
#[derive(Clone, Debug, Default)]
pub struct ObsTable {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
}

impl ObsTable {
    /// Creates a table with the given title and data-column headers.
    pub fn new(title: impl Into<String>, columns: impl IntoIterator<Item = String>) -> Self {
        ObsTable {
            title: title.into(),
            columns: columns.into_iter().collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of counts.
    pub fn row(&mut self, label: impl Into<String>, values: impl IntoIterator<Item = u64>) {
        self.rows.push((
            label.into(),
            values.into_iter().map(|v| v.to_string()).collect(),
        ));
    }

    /// Appends a row of preformatted cells (for `n/a` entries, Fig. 8).
    pub fn row_text(&mut self, label: impl Into<String>, values: impl IntoIterator<Item = String>) {
        self.rows
            .push((self_label(label), values.into_iter().collect()));
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The cell at `(row, col)` as text, if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|(_, v)| v.get(col))
            .map(String::as_str)
    }
}

fn self_label(label: impl Into<String>) -> String {
    label.into()
}

impl fmt::Display for ObsTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([self.title.len()])
            .max()
            .unwrap_or(0)
            .max(8);
        let col_w: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                self.rows
                    .iter()
                    .filter_map(|(_, v)| v.get(i).map(String::len))
                    .chain([c.len()])
                    .max()
                    .unwrap_or(6)
                    .max(6)
            })
            .collect();

        write!(f, "{:<label_w$}", self.title)?;
        for (c, w) in self.columns.iter().zip(&col_w) {
            write!(f, "  {c:>w$}")?;
        }
        writeln!(f)?;
        let total: usize = label_w + col_w.iter().map(|w| w + 2).sum::<usize>();
        writeln!(f, "{}", "-".repeat(total))?;
        for (label, values) in &self.rows {
            write!(f, "{label:<label_w$}")?;
            for (i, w) in col_w.iter().enumerate() {
                let empty = String::new();
                let v = values.get(i).unwrap_or(&empty);
                write!(f, "  {v:>w$}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = ObsTable::new("obs/100k", ["GTX5", "TesC"].map(String::from));
        t.row("no-op", [4979, 10581]);
        t.row("membar.gl", [0, 187]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("GTX5") && lines[0].contains("TesC"));
        assert!(lines[2].contains("4979") && lines[2].contains("10581"));
        assert!(lines[3].starts_with("membar.gl"));
        // Columns right-aligned: all lines same length.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn text_rows_for_na_cells() {
        let mut t = ObsTable::new("obs/100k", ["HD6570".to_string()]);
        t.row_text("dlb-lb", ["n/a".to_string()]);
        assert_eq!(t.cell(0, 0), Some("n/a"));
        assert!(t.to_string().contains("n/a"));
    }

    #[test]
    fn cell_lookup() {
        let mut t = ObsTable::new("t", ["a".to_string(), "b".to_string()]);
        t.row("r", [1, 2]);
        assert_eq!(t.cell(0, 1), Some("2"));
        assert_eq!(t.cell(1, 0), None);
        assert_eq!(t.num_rows(), 1);
    }
}
