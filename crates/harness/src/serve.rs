//! `weakgpu serve` — a long-running verdict daemon (JSONL over stdio).
//!
//! The axiomatic verdict of a litmus shape never changes, the models are
//! compiled once per process ([`weakgpu_models`]'s lazy registry), and
//! the [`VerdictCache`] answers repeats in a hash lookup — everything a
//! stateless checker-as-a-service needs. This module is the serving
//! loop: each input line is one JSON request, each output line one JSON
//! response, so a client can stream arbitrarily large batches through a
//! pipe without framing beyond newlines.
//!
//! # Protocol (`weakgpu-serve/1`)
//!
//! Requests are JSON objects, one per line:
//!
//! | field     | meaning                                                    |
//! |-----------|------------------------------------------------------------|
//! | `op`      | `"verdict"` (default), `"stats"`, or `"shutdown"`          |
//! | `id`      | scalar echoed back verbatim, for correlating responses     |
//! | `test`    | corpus test name, or inline litmus source if it has a `\n` |
//! | `litmus`  | inline litmus source (always parsed, never name-looked-up) |
//! | `model`   | model name (default from [`ServeConfig::default_model`])   |
//! | `pruning` | judge via the rf-class pruned enumerator (default config)  |
//! | `incremental` | judge the tree walk by overlay delta (implies pruning) |
//!
//! A `verdict` response carries `ok`, the resolved `test`/`model` names,
//! `num_candidates`, `num_allowed`, `condition_witnessed`, the rendered
//! `allowed_outcomes`, and `cached` (whether the cache answered without
//! enumerating). Malformed lines and unknown names produce
//! `{"ok": false, "error": …}` responses — the daemon itself keeps
//! serving; only I/O failure stops it. `stats` reports the shared
//! cache's counters; `shutdown` answers then ends the loop, and EOF on
//! the input is an implicit shutdown. The caller persists the cache
//! afterwards ([`weakgpu_axiom::persist`]) — that is the flush-on-
//! graceful-shutdown contract the CLI front end implements.
//!
//! The cache sits behind the same probe/publish lock discipline the
//! sweep workers use, so a future socket front end can serve concurrent
//! connections from one cache without changing this module.

use std::io::{BufRead, Write};
use std::sync::Mutex;

use weakgpu_axiom::cache::VerdictCache;
use weakgpu_axiom::enumerate::{model_outcomes_with, EnumConfig};
use weakgpu_axiom::plan::EvalContext;
use weakgpu_axiom::{CatModel, Model};
use weakgpu_front::{render_all, SourceFile};
use weakgpu_litmus::{corpus, corpus_extra, parser, LitmusTest};

use crate::json::{self, Json};

/// Version tag of the request/response protocol.
pub const PROTOCOL: &str = "weakgpu-serve/1";

/// Configuration of one serving session.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ServeConfig {
    /// Model judging requests that name none (`"ptx"` for the paper's
    /// validation semantics).
    pub default_model: String,
    /// Judge through the rf-class pruned enumerator when the request
    /// does not choose (verdicts are bit-identical either way).
    pub pruning: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            default_model: "ptx".to_owned(),
            pruning: false,
        }
    }
}

/// What one serving session did, for the operator's log line.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ServeSummary {
    /// Input lines processed (blank lines are skipped, not counted).
    pub requests: u64,
    /// Requests answered `ok: false`.
    pub errors: u64,
    /// `true` when a `shutdown` request ended the loop (rather than
    /// EOF).
    pub shutdown_requested: bool,
}

/// The model names `serve` (and `weakgpu check --model`) accept.
pub const MODEL_NAMES: [&str; 6] = ["ptx", "ptx-no-llh", "sc", "tso", "rmo", "operational"];

/// Looks a registry model up by its serving name.
///
/// # Errors
///
/// Names the unknown model and the valid vocabulary.
pub fn model_by_name(name: &str) -> Result<std::sync::Arc<CatModel>, String> {
    Ok(match name {
        "ptx" => weakgpu_models::ptx_model(),
        "ptx-no-llh" => weakgpu_models::ptx_model_without_llh(),
        "sc" => weakgpu_models::sc_model(),
        "tso" => weakgpu_models::tso_model(),
        "rmo" => weakgpu_models::rmo_model(),
        "operational" => weakgpu_models::operational_baseline(),
        other => {
            return Err(format!(
                "unknown model {other:?} (expected one of {})",
                MODEL_NAMES.join(", ")
            ))
        }
    })
}

/// Runs the serving loop over `input`/`output` with one shared cache.
///
/// Every request is answered on its own line, in request order. The
/// function returns at EOF or after answering a `shutdown` request; the
/// caller owns persisting `cache` afterwards.
///
/// # Errors
///
/// Only transport failures (reading `input`, writing `output`) abort
/// the loop; per-request problems become error *responses*.
pub fn serve<R: BufRead, W: Write>(
    input: R,
    mut output: W,
    cfg: &ServeConfig,
    cache: &Mutex<VerdictCache>,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    let mut ctx = EvalContext::new();
    // Built on the first by-name request, reused for the session — a
    // daemon must not rebuild the corpus per request.
    let corpus_index = std::cell::OnceCell::new();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        summary.requests += 1;
        let (response, shutdown) = answer(&line, cfg, cache, &mut ctx, &corpus_index);
        if response.contains("\"ok\": false") {
            summary.errors += 1;
        }
        writeln!(output, "{response}")?;
        output.flush()?;
        if shutdown {
            summary.shutdown_requested = true;
            break;
        }
    }
    Ok(summary)
}

/// Lazily-built name → test index shared by a session's requests.
type CorpusIndex = std::cell::OnceCell<std::collections::HashMap<String, LitmusTest>>;

/// Answers one request line; the bool asks the loop to stop.
fn answer(
    line: &str,
    cfg: &ServeConfig,
    cache: &Mutex<VerdictCache>,
    ctx: &mut EvalContext,
    corpus_index: &CorpusIndex,
) -> (String, bool) {
    let request = match json::parse(line) {
        Ok(v @ Json::Obj(_)) => v,
        Ok(_) => {
            return (
                error_response("null", "request must be a JSON object"),
                false,
            )
        }
        Err(e) => {
            return (
                error_response("null", &format!("bad request JSON: {e}")),
                false,
            )
        }
    };
    let id = match request.get("id") {
        None => "null".to_owned(),
        Some(Json::Null) => "null".to_owned(),
        Some(Json::UInt(n)) => n.to_string(),
        Some(Json::Num(n)) => n.to_string(),
        Some(Json::Str(s)) => json::escape(s),
        Some(Json::Bool(b)) => b.to_string(),
        Some(_) => return (error_response("null", "id must be a scalar"), false),
    };
    match request
        .get("op")
        .and_then(Json::as_str)
        .unwrap_or("verdict")
    {
        "verdict" => (
            verdict_response(&id, &request, cfg, cache, ctx, corpus_index),
            false,
        ),
        "stats" => {
            let c = cache.lock().expect("no poisoned locks");
            (
                format!(
                    "{{\"id\": {id}, \"ok\": true, \"protocol\": {}, \"entries\": {}, \"hits\": {}, \"misses\": {}, \"warm_entries\": {}, \"warm_hits\": {}}}",
                    json::escape(PROTOCOL),
                    c.len(),
                    c.hits(),
                    c.misses(),
                    c.warm_entries(),
                    c.warm_hits()
                ),
                false,
            )
        }
        "shutdown" => (
            format!("{{\"id\": {id}, \"ok\": true, \"shutting_down\": true}}"),
            true,
        ),
        other => (
            error_response(
                &id,
                &format!("unknown op {other:?} (expected verdict, stats or shutdown)"),
            ),
            false,
        ),
    }
}

fn error_response(id: &str, message: &str) -> String {
    format!(
        "{{\"id\": {id}, \"ok\": false, \"error\": {}}}",
        json::escape(message)
    )
}

fn verdict_response(
    id: &str,
    request: &Json,
    cfg: &ServeConfig,
    cache: &Mutex<VerdictCache>,
    ctx: &mut EvalContext,
    corpus_index: &CorpusIndex,
) -> String {
    let test = match resolve_test(request, corpus_index) {
        Ok(t) => t,
        Err(msg) => return error_response(id, &msg),
    };
    let model_name = request
        .get("model")
        .and_then(Json::as_str)
        .unwrap_or(&cfg.default_model);
    let model = match model_by_name(model_name) {
        Ok(m) => m,
        Err(msg) => return error_response(id, &msg),
    };
    let pruning = match request.get("pruning") {
        None => cfg.pruning,
        Some(Json::Bool(b)) => *b,
        Some(_) => return error_response(id, "pruning must be a boolean"),
    };
    let incremental = match request.get("incremental") {
        None => false,
        Some(Json::Bool(b)) => *b,
        Some(_) => return error_response(id, "incremental must be a boolean"),
    };
    let enum_cfg = EnumConfig {
        // Incremental evaluation only exists on the tree walk, so it
        // drags pruning in with it. Verdict-cache keys cover the whole
        // config, so the two request shapes cache separately.
        pruning: pruning || incremental,
        incremental,
        ..EnumConfig::default()
    };
    // Probe under the lock, enumerate outside it, publish the result —
    // the sweep workers' discipline, so concurrent front ends can share
    // this cache unchanged.
    let probed = cache
        .lock()
        .expect("no poisoned locks")
        .lookup(&test, &model, &enum_cfg);
    let (verdict, cached) = match probed {
        Some(v) => (v, true),
        None => match model_outcomes_with(&test, &model, &enum_cfg, ctx) {
            Ok(v) => (
                cache
                    .lock()
                    .expect("no poisoned locks")
                    .publish(&test, &model, &enum_cfg, v),
                false,
            ),
            Err(e) => return error_response(id, &format!("enumeration failed: {e}")),
        },
    };
    let outcomes = verdict
        .allowed_outcomes
        .iter()
        .map(|o| json::escape(&o.to_string()))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"id\": {id}, \"ok\": true, \"test\": {}, \"model\": {}, \"num_candidates\": {}, \"num_allowed\": {}, \"condition_witnessed\": {}, \"allowed_outcomes\": [{outcomes}], \"cached\": {cached}}}",
        json::escape(test.name()),
        json::escape(model.name()),
        verdict.num_candidates,
        verdict.num_allowed,
        verdict.condition_witnessed
    )
}

/// Resolves the request's test: inline `litmus` source wins, then
/// `test` as a corpus name (or inline source if it contains a newline
/// — no test *name* does).
fn resolve_test(request: &Json, corpus_index: &CorpusIndex) -> Result<LitmusTest, String> {
    if let Some(src) = request.get("litmus").and_then(Json::as_str) {
        return parse_litmus(src);
    }
    let name = request
        .get("test")
        .and_then(Json::as_str)
        .ok_or("request needs a \"test\" (corpus name) or \"litmus\" (source) string")?;
    if name.contains('\n') {
        return parse_litmus(name);
    }
    corpus_index
        .get_or_init(|| {
            corpus::all()
                .into_iter()
                .chain(corpus_extra::all_extra())
                .map(|t| (t.name().to_owned(), t))
                .collect()
        })
        .get(name)
        .cloned()
        .ok_or_else(|| format!("no corpus test named {name:?} (try \"litmus\" with inline source)"))
}

fn parse_litmus(src: &str) -> Result<LitmusTest, String> {
    let file = SourceFile::new("<request>", src);
    parser::parse_with_diagnostics(&file)
        .into_result()
        .map_err(|diags| format!("litmus parse failed: {}", render_all(&diags, &file)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run(lines: &str, cfg: &ServeConfig) -> (ServeSummary, Vec<Json>) {
        let cache = Mutex::new(VerdictCache::new());
        run_with_cache(lines, cfg, &cache)
    }

    fn run_with_cache(
        lines: &str,
        cfg: &ServeConfig,
        cache: &Mutex<VerdictCache>,
    ) -> (ServeSummary, Vec<Json>) {
        let mut out = Vec::new();
        let summary = serve(Cursor::new(lines), &mut out, cfg, cache).unwrap();
        let text = String::from_utf8(out).unwrap();
        let responses = text
            .lines()
            .map(|l| json::parse(l).expect("every response line is valid JSON"))
            .collect();
        (summary, responses)
    }

    #[test]
    fn answers_a_batch_of_verdict_requests() {
        let batch = r#"{"id": 1, "test": "mp+inter-CTA"}
{"id": 2, "test": "sb+inter-CTA", "model": "sc"}
{"id": 3, "test": "mp+inter-CTA", "pruning": true}
"#;
        let (summary, rs) = run(batch, &ServeConfig::default());
        assert_eq!((summary.requests, summary.errors), (3, 0));
        assert!(!summary.shutdown_requested, "EOF is not a shutdown op");
        assert_eq!(rs.len(), 3);
        // mp is PTX-allowed (weak), sb is SC-forbidden.
        assert_eq!(rs[0].get("id").unwrap().as_u64(), Some(1));
        assert_eq!(rs[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(rs[0].get("condition_witnessed"), Some(&Json::Bool(true)));
        assert_eq!(rs[0].get("cached"), Some(&Json::Bool(false)));
        assert_eq!(rs[1].get("condition_witnessed"), Some(&Json::Bool(false)));
        assert_eq!(rs[1].get("model").unwrap().as_str(), Some("sc"));
        // Pruned and exhaustive agree (different cache entries).
        assert_eq!(
            rs[2].get("num_candidates"),
            rs[0].get("num_candidates"),
            "pruned verdict must match"
        );
        assert!(
            !rs[0]
                .get("allowed_outcomes")
                .unwrap()
                .as_arr()
                .unwrap()
                .is_empty(),
            "mp has allowed outcomes"
        );
    }

    #[test]
    fn repeats_hit_the_shared_cache() {
        let batch = "{\"id\": 1, \"test\": \"mp+inter-CTA\"}\n{\"id\": 2, \"test\": \"mp+inter-CTA\"}\n{\"op\": \"stats\", \"id\": 3}\n";
        let (_, rs) = run(batch, &ServeConfig::default());
        assert_eq!(rs[0].get("cached"), Some(&Json::Bool(false)));
        assert_eq!(rs[1].get("cached"), Some(&Json::Bool(true)));
        assert_eq!(rs[2].get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(rs[2].get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(rs[2].get("entries").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn inline_litmus_source_is_judged() {
        let src = "GPU_PTX inline-mp\nT0 | T1 ;\nst.cg [x],1 | ld.cg r1,[y] ;\nst.cg [y],1 | ld.cg r2,[x] ;\nx: global, y: global\nexists (1:r1=1 /\\ 1:r2=0)\n";
        let request = format!(
            "{{\"id\": 9, \"litmus\": {}, \"model\": \"sc\"}}\n",
            json::escape(src)
        );
        let (summary, rs) = run(&request, &ServeConfig::default());
        assert_eq!(summary.errors, 0, "{rs:?}");
        assert_eq!(rs[0].get("test").unwrap().as_str(), Some("inline-mp"));
        // SC forbids message-passing reordering.
        assert_eq!(rs[0].get("condition_witnessed"), Some(&Json::Bool(false)));
    }

    #[test]
    fn bad_requests_answer_errors_and_keep_serving() {
        let batch = "not json at all\n{\"id\": 1}\n{\"id\": 2, \"test\": \"no-such-test\"}\n{\"id\": 3, \"test\": \"mp+inter-CTA\", \"model\": \"m6502\"}\n{\"id\": 4, \"op\": \"frobnicate\"}\n{\"id\": 5, \"test\": \"mp+inter-CTA\"}\n";
        let (summary, rs) = run(batch, &ServeConfig::default());
        assert_eq!((summary.requests, summary.errors), (6, 5));
        for r in &rs[..5] {
            assert_eq!(r.get("ok"), Some(&Json::Bool(false)), "{r:?}");
        }
        assert!(rs[3]
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("ptx"));
        // The daemon survived every error and answered the last request.
        assert_eq!(rs[5].get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn shutdown_op_ends_the_loop_early() {
        let batch = "{\"id\": 1, \"op\": \"shutdown\"}\n{\"id\": 2, \"test\": \"mp+inter-CTA\"}\n";
        let (summary, rs) = run(batch, &ServeConfig::default());
        assert!(summary.shutdown_requested);
        assert_eq!(summary.requests, 1, "nothing after shutdown is read");
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].get("shutting_down"), Some(&Json::Bool(true)));
    }

    #[test]
    fn warm_cache_answers_without_enumerating() {
        // Session 1 judges and its cache is persisted; session 2 starts
        // from the restored cache and its first lookup is a warm hit.
        let cache = Mutex::new(VerdictCache::new());
        let (_, rs) = run_with_cache(
            "{\"id\": 1, \"test\": \"mp+inter-CTA\"}\n",
            &ServeConfig::default(),
            &cache,
        );
        assert_eq!(rs[0].get("cached"), Some(&Json::Bool(false)));
        let rendered = weakgpu_axiom::persist::render(&cache.lock().unwrap());
        let warm = Mutex::new(weakgpu_axiom::persist::parse(&rendered).unwrap());
        let (_, rs) = run_with_cache(
            "{\"id\": 1, \"test\": \"mp+inter-CTA\"}\n{\"op\": \"stats\", \"id\": 2}\n",
            &ServeConfig::default(),
            &warm,
        );
        assert_eq!(rs[0].get("cached"), Some(&Json::Bool(true)));
        assert_eq!(rs[1].get("warm_hits").unwrap().as_u64(), Some(1));
        assert_eq!(rs[1].get("warm_entries").unwrap().as_u64(), Some(1));
    }
}
