//! Soundness comparison: are all hardware(-simulator) observations allowed
//! by a memory model? (Paper Sec. 5.4: "whenever the hardware exhibits a
//! behaviour, our model allows it".)

use weakgpu_axiom::enumerate::{model_outcomes_with, EnumConfig, EnumError};
use weakgpu_axiom::model::Model;
use weakgpu_axiom::plan::EvalContext;
use weakgpu_litmus::{LitmusTest, Outcome};

use crate::histogram::Histogram;

/// The verdict of one soundness check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SoundnessReport {
    /// Test name.
    pub test: String,
    /// Model name.
    pub model: String,
    /// Observed outcomes that the model forbids (empty = sound).
    pub violations: Vec<Outcome>,
    /// Number of distinct outcomes observed.
    pub observed: usize,
    /// Number of distinct outcomes the model allows.
    pub allowed: usize,
}

impl SoundnessReport {
    /// `true` iff every observation is model-allowed.
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks that every outcome in `observations` is allowed by `model`.
///
/// # Errors
///
/// Propagates enumeration failures from the axiomatic engine.
pub fn check_soundness(
    test: &LitmusTest,
    observations: &Histogram,
    model: &dyn Model,
    cfg: &EnumConfig,
) -> Result<SoundnessReport, EnumError> {
    check_soundness_with(test, observations, model, cfg, &mut EvalContext::new())
}

/// [`check_soundness`] with a caller-owned evaluation context, so a loop
/// of soundness checks (one per sweep cell, say) reuses one arena for
/// every model verdict. The verdict streams the candidate space through
/// the skeleton/overlay visitor (one skeleton per trace combination, an
/// in-place rf/co overlay per candidate) rather than materialising it.
/// With [`EnumConfig::pruning`] set, the verdict comes from the rf-class
/// pruned walk instead — bit-identical by construction, so the report is
/// the same either way.
///
/// # Errors
///
/// Propagates enumeration failures from the axiomatic engine.
pub fn check_soundness_with(
    test: &LitmusTest,
    observations: &Histogram,
    model: &dyn Model,
    cfg: &EnumConfig,
    ctx: &mut EvalContext,
) -> Result<SoundnessReport, EnumError> {
    let verdict = model_outcomes_with(test, model, cfg, ctx)?;
    let violations: Vec<Outcome> = observations
        .outcomes()
        .filter(|o| !verdict.allowed_outcomes.contains(*o))
        .cloned()
        .collect();
    Ok(SoundnessReport {
        test: test.name().to_owned(),
        model: model.name().to_owned(),
        violations,
        observed: observations.distinct(),
        allowed: verdict.allowed_outcomes.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_test, RunConfig};
    use weakgpu_litmus::{corpus, FinalExpr, ThreadScope};
    use weakgpu_models::{operational_baseline, ptx_model};
    use weakgpu_sim::chip::{Chip, Incantations};

    #[test]
    fn titan_observations_are_ptx_sound() {
        let cfg = RunConfig {
            iterations: 20_000,
            incantations: Incantations::best_inter_cta(),
            ..RunConfig::default()
        };
        let model = ptx_model();
        for test in [
            corpus::corr(),
            corpus::mp(ThreadScope::InterCta, None),
            corpus::sb(ThreadScope::InterCta, None),
            corpus::lb(ThreadScope::InterCta, None),
            corpus::cas_sl(false),
            corpus::cas_sl(true),
            corpus::sl_future(false),
            corpus::dlb_lb(false),
        ] {
            let report = run_test(&test, Chip::GtxTitan, &cfg).unwrap();
            let sound =
                check_soundness(&test, &report.histogram, &model, &Default::default()).unwrap();
            assert!(
                sound.is_sound(),
                "{}: observed forbidden outcomes {:?}",
                test.name(),
                sound.violations
            );
        }
    }

    #[test]
    fn operational_baseline_unsound_on_lb_ctas() {
        use weakgpu_litmus::FenceScope;
        // Sec. 6: inter-CTA lb+membar.ctas is observed on Kepler but
        // forbidden by the operational baseline — the soundness check must
        // flag it.
        let test = corpus::lb(ThreadScope::InterCta, Some(FenceScope::Cta));
        let cfg = RunConfig {
            iterations: 200_000,
            incantations: Incantations::best_inter_cta(),
            seed: 0xcafe,
            ..RunConfig::default()
        };
        let report = run_test(&test, Chip::GtxTitan, &cfg).unwrap();
        assert!(report.witnesses > 0, "the leak must manifest at 200k runs");
        let sound = check_soundness(
            &test,
            &report.histogram,
            &operational_baseline(),
            &Default::default(),
        )
        .unwrap();
        assert!(!sound.is_sound(), "operational model must be unsound here");
        // And the paper's model covers the same observations.
        let ptx =
            check_soundness(&test, &report.histogram, &ptx_model(), &Default::default()).unwrap();
        assert!(ptx.is_sound());
    }

    #[test]
    fn pruned_soundness_report_matches_exhaustive() {
        let cfg = RunConfig {
            iterations: 10_000,
            incantations: Incantations::best_inter_cta(),
            ..RunConfig::default()
        };
        let pruned_cfg = EnumConfig {
            pruning: true,
            ..EnumConfig::default()
        };
        let mut ctx = EvalContext::new();
        for model in [ptx_model(), operational_baseline()] {
            for test in [
                corpus::corr(),
                corpus::mp(ThreadScope::InterCta, None),
                corpus::dlb_lb(false),
            ] {
                let report = run_test(&test, Chip::GtxTitan, &cfg).unwrap();
                let exhaustive = check_soundness_with(
                    &test,
                    &report.histogram,
                    &model,
                    &EnumConfig::default(),
                    &mut ctx,
                )
                .unwrap();
                let pruned =
                    check_soundness_with(&test, &report.histogram, &model, &pruned_cfg, &mut ctx)
                        .unwrap();
                assert_eq!(pruned, exhaustive, "{}", test.name());
            }
        }
    }

    #[test]
    fn fabricated_violation_detected() {
        // An impossible outcome (r1=7) must be flagged by any model.
        let test = corpus::corr();
        let mut h = Histogram::new();
        let mut o = Outcome::new();
        o.set(FinalExpr::reg(1, "r1"), 7);
        o.set(FinalExpr::reg(1, "r2"), 7);
        h.record(o);
        let sound = check_soundness(&test, &h, &ptx_model(), &Default::default()).unwrap();
        assert!(!sound.is_sound());
        assert_eq!(sound.violations.len(), 1);
    }
}
