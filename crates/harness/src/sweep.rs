//! Paper-scale sharded validation sweeps (paper Sec. 5.4).
//!
//! The paper's headline validation runs a generated family of ~11k tests
//! against hardware and checks every observation against the axiomatic
//! model. This module turns that from a one-off binary into a subsystem:
//!
//! * **Deterministic sharding** — the canonically-ordered family is
//!   partitioned by global index ([`Shard::selects`]): shard `K/N` takes
//!   tests whose index `i` satisfies `i % N == K-1`, so the `N` shards
//!   are disjoint, exhaustive, and identical on every machine. Per-test
//!   seeds derive from the *global* index, so a sharded run's cells are
//!   bit-identical to the same cells of an unsharded run.
//! * **Model-verdict caching** — soundness is checked per cell against
//!   the model, but the axiomatic verdict depends only on the test's
//!   shape, so a [`VerdictCache`] enumerates each shape once (cells of
//!   one test racing on first completion may enumerate twice; the first
//!   publish wins) and answers the other chips' cells from the cache
//!   (the hot path measured in `BENCH_sweep.json`). Cache misses are
//!   judged through the model's compiled plan with one
//!   [`EvalContext`] per worker thread (the cache-miss hot path measured
//!   in `BENCH_model.json`), composing the two optimisations: the cache
//!   removes repeat enumerations, the plan makes the remaining ones
//!   cheap.
//! * **Machine-readable reports** — each completed cell streams a JSONL
//!   [`CellRecord`]; the aggregate [`SweepReport`] serialises to JSON,
//!   parses back, and [`SweepReport::merge`]s across shards into totals
//!   identical to an unsharded run at the same seed.

use std::cell::RefCell;
use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

use weakgpu_axiom::cache::VerdictCache;
use weakgpu_axiom::enumerate::{EnumConfig, EnumError};
use weakgpu_axiom::persist;
use weakgpu_axiom::plan::EvalContext;
use weakgpu_litmus::LitmusTest;
use weakgpu_models::ptx_model;
use weakgpu_sim::chip::Chip;

use crate::campaign::{default_incantations, run_campaign_with, CampaignConfig, CellSpec};
use crate::json::{self, Json};
use crate::runner::HarnessError;

/// Version tag of the JSON report schema.
pub const SCHEMA: &str = "weakgpu-sweep/1";

/// One shard of a sweep: `index` of `count`, 1-based.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Shard {
    /// 1-based shard index.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Shard {
    /// Parses the CLI syntax `K/N`.
    ///
    /// # Errors
    ///
    /// Describes the malformed input.
    pub fn parse(s: &str) -> Result<Shard, String> {
        let (k, n) = s
            .split_once('/')
            .ok_or_else(|| format!("shard must be K/N, got {s:?}"))?;
        let index: usize = k.parse().map_err(|_| format!("bad shard index {k:?}"))?;
        let count: usize = n.parse().map_err(|_| format!("bad shard count {n:?}"))?;
        let shard = Shard { index, count };
        shard.validate()?;
        Ok(shard)
    }

    /// Checks `1 <= index <= count`.
    ///
    /// # Errors
    ///
    /// Describes the violated bound.
    pub fn validate(&self) -> Result<(), String> {
        if self.count == 0 {
            return Err("shard count must be >= 1".to_owned());
        }
        if self.index == 0 || self.index > self.count {
            return Err(format!(
                "shard index must be in 1..={}, got {}",
                self.count, self.index
            ));
        }
        Ok(())
    }

    /// `true` iff this shard owns global test index `i`. Round-robin, so
    /// shard sizes differ by at most one and every index has exactly one
    /// owner.
    pub fn selects(&self, i: usize) -> bool {
        i % self.count == self.index - 1
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Configuration of one sweep invocation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SweepConfig {
    /// Family label recorded in reports (`"small"`, `"paper"`, …). Merge
    /// refuses to combine reports with different labels.
    pub family: String,
    /// The shard to run (`None` = the whole family).
    pub shard: Option<Shard>,
    /// Chips to run every test on.
    pub chips: Vec<Chip>,
    /// Iterations per (test, chip) cell.
    pub iterations: usize,
    /// Base seed; each test's cell seed is `seed ^ global_index`.
    pub seed: u64,
    /// Worker threads (`None` = all cores). Wall-clock only.
    pub parallelism: Option<usize>,
    /// Judge cache-miss cells through the rf-class pruned enumerator
    /// ([`weakgpu_axiom::enumerate::EnumConfig::pruning`]) instead of
    /// the exhaustive stream. Verdicts are bit-identical; the pruned
    /// and exhaustive arms keep separate verdict-cache entries (the
    /// cache key covers the enumeration config).
    pub pruning: bool,
    /// Judge cache-miss cells with bit-plane batch evaluation
    /// ([`weakgpu_axiom::enumerate::EnumConfig::batching`]): trailing
    /// sibling groups of 2–64 candidates share one lane-parallel plan
    /// pass. Composes with [`SweepConfig::pruning`]. Verdicts are
    /// bit-identical; the batched arms keep their own verdict-cache
    /// entries.
    pub batching: bool,
    /// Judge cache-miss cells with incremental overlay-delta evaluation
    /// ([`weakgpu_axiom::enumerate::EnumConfig::incremental`]): plan
    /// register state and the per-acyclicity-check topological order
    /// are pushed and popped along the decision-tree path instead of
    /// being refilled from scratch at every cut attempt. Implies
    /// [`SweepConfig::pruning`] (the delta journal only exists on the
    /// tree walk) and composes with [`SweepConfig::batching`]. Verdicts
    /// are bit-identical; the incremental arms keep their own
    /// verdict-cache entries.
    pub incremental: bool,
    /// Warm-start the verdict cache from this `weakgpu-cache/1` file
    /// ([`weakgpu_axiom::persist`]) before the run, and write the
    /// updated cache back after it. A missing file starts the run cold
    /// and is created at the end (unless [`SweepConfig::cache_readonly`]
    /// is set, in which case a missing file is an error — a warm-start
    /// contract that silently ran cold would hide a broken pipeline).
    /// Preloaded verdicts are semantically invisible: a warm run's
    /// report is bit-identical in every semantic field to a cold run's
    /// ([`SweepReport::totals_match`]); only [`CacheStats`] differ.
    pub cache_file: Option<std::path::PathBuf>,
    /// With [`SweepConfig::cache_file`]: load only, never write the
    /// updated cache back — for consumers of a shared cache artifact
    /// (CI shards) that must not race on the file.
    pub cache_readonly: bool,
}

/// Sweep failure.
#[derive(Clone, PartialEq, Debug)]
pub enum SweepError {
    /// A cell failed to compile or run.
    Harness(HarnessError),
    /// The axiomatic enumeration failed for some test.
    Enum(String, EnumError),
    /// The configuration or input family is invalid.
    Config(String),
    /// Reports could not be merged.
    Merge(String),
    /// A report failed to parse.
    Json(String),
    /// The persistent verdict cache could not be loaded or saved.
    Cache(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Harness(e) => write!(f, "{e}"),
            SweepError::Enum(test, e) => write!(f, "{test}: {e}"),
            SweepError::Config(msg) => write!(f, "invalid sweep config: {msg}"),
            SweepError::Merge(msg) => write!(f, "cannot merge reports: {msg}"),
            SweepError::Json(msg) => write!(f, "invalid report JSON: {msg}"),
            SweepError::Cache(msg) => write!(f, "verdict cache: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<HarnessError> for SweepError {
    fn from(e: HarnessError) -> Self {
        SweepError::Harness(e)
    }
}

/// One completed cell, as streamed to JSONL.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CellRecord {
    /// Test name.
    pub test: String,
    /// Global index of the test in the canonical family.
    pub index: usize,
    /// Chip short name.
    pub chip: String,
    /// Runs executed.
    pub runs: u64,
    /// Runs witnessing the final condition.
    pub witnesses: u64,
    /// Distinct outcomes observed.
    pub distinct: usize,
    /// Observed outcomes the model forbids (rendered; empty = sound).
    pub unsound: Vec<String>,
    /// Cumulative verdict-cache hits at the moment this cell completed
    /// (bookkeeping, not semantic: depends on completion order).
    pub cache_hits: u64,
    /// Cumulative verdict-cache misses at the moment this cell
    /// completed.
    pub cache_misses: u64,
    /// Wall-clock time this cell spent streaming candidate executions
    /// through the model on a verdict-cache miss, in microseconds (0 on
    /// a hit) — attributes sweep wins to skeleton sharing vs caching.
    pub enum_micros: u64,
    /// Enumeration-tree nodes visited while judging this cell's shape
    /// on a verdict-cache miss (0 on a hit). Under the exhaustive
    /// stream this equals the candidate count; under pruning it is the
    /// forced-class + leaf count.
    pub classes_visited: u64,
    /// Candidate executions skipped by forced-verdict subtree cuts on a
    /// verdict-cache miss (always 0 without `SweepConfig::pruning`).
    pub candidates_pruned: u64,
    /// Bit-plane batches formed while judging this cell's shape on a
    /// verdict-cache miss (always 0 without `SweepConfig::batching`).
    pub batches_formed: u64,
    /// Lanes occupied across those batches — `lanes_filled /
    /// batches_formed` is the cell's mean lane occupancy, the number CI
    /// artifacts watch to judge how well sibling candidates pack.
    pub lanes_filled: u64,
    /// Wall-clock microseconds spent inside the walk's forced-verdict
    /// cut attempts on a verdict-cache miss (always 0 without
    /// `SweepConfig::pruning`) — the denominator the incremental delta
    /// journal attacks.
    pub cut_attempt_micros: u64,
    /// Overlay-dependent plan registers filled from scratch while
    /// judging this cell's shape on a verdict-cache miss. Without
    /// `SweepConfig::incremental` every cut attempt and leaf refills;
    /// with it only per-combination baselines count, so this
    /// counter's collapse is the direct witness that the delta
    /// journal is engaged.
    pub registers_refilled: u64,
}

impl CellRecord {
    /// One JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"test\": {}, \"index\": {}, \"chip\": {}, \"runs\": {}, \"witnesses\": {}, \"distinct\": {}, \"unsound\": [{}], \"cache_hits\": {}, \"cache_misses\": {}, \"enum_micros\": {}, \"classes_visited\": {}, \"candidates_pruned\": {}, \"batches_formed\": {}, \"lanes_filled\": {}, \"cut_attempt_micros\": {}, \"registers_refilled\": {}}}",
            json::escape(&self.test),
            self.index,
            json::escape(&self.chip),
            self.runs,
            self.witnesses,
            self.distinct,
            self.unsound
                .iter()
                .map(|o| json::escape(o))
                .collect::<Vec<_>>()
                .join(", "),
            self.cache_hits,
            self.cache_misses,
            self.enum_micros,
            self.classes_visited,
            self.candidates_pruned,
            self.batches_formed,
            self.lanes_filled,
            self.cut_attempt_micros,
            self.registers_refilled,
        )
    }
}

/// Totals for one chip column (comparable to the paper's validation
/// table rows).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChipTotals {
    /// Chip short name.
    pub chip: String,
    /// Cells run on this chip.
    pub cells: u64,
    /// Total runs.
    pub runs: u64,
    /// Cells with at least one witness.
    pub witnessed_cells: u64,
    /// Total witnessing runs.
    pub witnesses: u64,
    /// Cells with model-forbidden observations.
    pub unsound_cells: u64,
}

/// One unsound cell in the aggregate report.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct UnsoundCell {
    /// Global index of the test in the canonical family.
    pub index: usize,
    /// Test name.
    pub test: String,
    /// Chip short name.
    pub chip: String,
    /// The forbidden outcomes observed.
    pub outcomes: Vec<String>,
}

/// Verdict-cache statistics, plus the enumeration time they saved.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Distinct shapes enumerated.
    pub entries: u64,
    /// Lookups answered without enumeration.
    pub hits: u64,
    /// Lookups that enumerated.
    pub misses: u64,
    /// Total wall-clock microseconds spent streaming candidates through
    /// the model on the miss path (this shard; merge sums shards).
    pub enum_micros: u64,
    /// Entries preloaded from a persistent cache file
    /// ([`SweepConfig::cache_file`]) rather than judged in this run.
    pub warm_entries: u64,
    /// Hits answered by a preloaded entry — the warm-cache contract: a
    /// shard handed a warm cache artifact must record a nonzero count
    /// here, or the artifact did nothing.
    pub warm_hits: u64,
    /// Total wall-clock microseconds the miss path spent inside
    /// forced-verdict cut attempts (this shard; merge sums shards).
    /// Always 0 without [`SweepConfig::pruning`].
    pub cut_attempt_micros: u64,
    /// Total plan registers refilled from scratch on the miss path
    /// (this shard; merge sums shards). Compared against a
    /// non-incremental run of the same family, the collapse of this
    /// total is the sweep-level witness that
    /// [`SweepConfig::incremental`] is doing delta work.
    pub registers_refilled: u64,
}

/// The aggregate result of one sweep (or of merging shard sweeps).
#[derive(Clone, PartialEq, Debug)]
pub struct SweepReport {
    /// Family label.
    pub family: String,
    /// Size of the full family (all shards).
    pub family_size: u64,
    /// The shard this report covers (`None` = whole family / merged).
    pub shard: Option<Shard>,
    /// Base seed.
    pub seed: u64,
    /// Iterations per cell.
    pub iterations: u64,
    /// Chip short names, in column order.
    pub chips: Vec<String>,
    /// Tests run (this shard).
    pub tests_run: u64,
    /// Tests witnessing their weak outcome on at least one chip.
    pub weak_tests: u64,
    /// Cells run.
    pub cells: u64,
    /// Cells with at least one witness.
    pub witnessed_cells: u64,
    /// Total runs.
    pub total_runs: u64,
    /// Total witnessing runs.
    pub total_witnesses: u64,
    /// Cells with model-forbidden observations.
    pub unsound_cells: u64,
    /// The unsound cells, in canonical (test-major) order.
    pub unsound: Vec<UnsoundCell>,
    /// Per-chip totals, in chip column order.
    pub per_chip: Vec<ChipTotals>,
    /// Verdict-cache statistics (informational; not part of
    /// [`SweepReport::totals_match`]).
    pub cache: CacheStats,
}

impl SweepReport {
    /// `true` iff no cell observed a model-forbidden outcome.
    pub fn is_sound(&self) -> bool {
        self.unsound_cells == 0
    }

    /// `true` iff every semantic field matches `other` — everything
    /// except the shard designation and the cache statistics (which
    /// depend on how the work was split, not on what was measured).
    /// Merging all shards of a family must yield a report whose totals
    /// match the unsharded run at the same seed.
    pub fn totals_match(&self, other: &SweepReport) -> bool {
        self.family == other.family
            && self.family_size == other.family_size
            && self.seed == other.seed
            && self.iterations == other.iterations
            && self.chips == other.chips
            && self.tests_run == other.tests_run
            && self.weak_tests == other.weak_tests
            && self.cells == other.cells
            && self.witnessed_cells == other.witnessed_cells
            && self.total_runs == other.total_runs
            && self.total_witnesses == other.total_witnesses
            && self.unsound_cells == other.unsound_cells
            && self.unsound == other.unsound
            && self.per_chip == other.per_chip
    }

    /// Serialises to the `weakgpu-sweep/1` JSON schema (pretty-printed,
    /// deterministic member order, trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": {},\n", json::escape(SCHEMA)));
        s.push_str(&format!("  \"family\": {},\n", json::escape(&self.family)));
        s.push_str(&format!("  \"family_size\": {},\n", self.family_size));
        match self.shard {
            Some(sh) => s.push_str(&format!(
                "  \"shard\": {{\"index\": {}, \"count\": {}}},\n",
                sh.index, sh.count
            )),
            None => s.push_str("  \"shard\": null,\n"),
        }
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"iterations\": {},\n", self.iterations));
        s.push_str(&format!(
            "  \"chips\": [{}],\n",
            self.chips
                .iter()
                .map(|c| json::escape(c))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!("  \"tests_run\": {},\n", self.tests_run));
        s.push_str(&format!("  \"weak_tests\": {},\n", self.weak_tests));
        s.push_str(&format!("  \"cells\": {},\n", self.cells));
        s.push_str(&format!(
            "  \"witnessed_cells\": {},\n",
            self.witnessed_cells
        ));
        s.push_str(&format!("  \"total_runs\": {},\n", self.total_runs));
        s.push_str(&format!(
            "  \"total_witnesses\": {},\n",
            self.total_witnesses
        ));
        s.push_str(&format!("  \"unsound_cells\": {},\n", self.unsound_cells));
        s.push_str("  \"unsound\": [");
        for (i, u) in self.unsound.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"index\": {}, \"test\": {}, \"chip\": {}, \"outcomes\": [{}]}}",
                u.index,
                json::escape(&u.test),
                json::escape(&u.chip),
                u.outcomes
                    .iter()
                    .map(|o| json::escape(o))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        if !self.unsound.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        s.push_str("  \"per_chip\": [");
        for (i, c) in self.per_chip.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"chip\": {}, \"cells\": {}, \"runs\": {}, \"witnessed_cells\": {}, \"witnesses\": {}, \"unsound_cells\": {}}}",
                json::escape(&c.chip),
                c.cells,
                c.runs,
                c.witnessed_cells,
                c.witnesses,
                c.unsound_cells
            ));
        }
        if !self.per_chip.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        s.push_str(&format!(
            "  \"cache\": {{\"entries\": {}, \"hits\": {}, \"misses\": {}, \"enum_micros\": {}, \"warm_entries\": {}, \"warm_hits\": {}, \"cut_attempt_micros\": {}, \"registers_refilled\": {}}}\n",
            self.cache.entries,
            self.cache.hits,
            self.cache.misses,
            self.cache.enum_micros,
            self.cache.warm_entries,
            self.cache.warm_hits,
            self.cache.cut_attempt_micros,
            self.cache.registers_refilled
        ));
        s.push_str("}\n");
        s
    }

    /// Parses a `weakgpu-sweep/1` JSON report.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Json`] describing the first problem.
    pub fn from_json(src: &str) -> Result<SweepReport, SweepError> {
        let v = json::parse(src).map_err(SweepError::Json)?;
        let schema = str_field(&v, "schema")?;
        if schema != SCHEMA {
            return Err(SweepError::Json(format!(
                "unsupported schema {schema:?} (expected {SCHEMA:?})"
            )));
        }
        let shard = match v.get("shard") {
            None => return Err(SweepError::Json("missing field shard".to_owned())),
            Some(Json::Null) => None,
            Some(sh) => {
                let shard = Shard {
                    index: u64_field(sh, "index")? as usize,
                    count: u64_field(sh, "count")? as usize,
                };
                shard.validate().map_err(SweepError::Json)?;
                Some(shard)
            }
        };
        let chips = str_arr_field(&v, "chips")?;
        let mut unsound = Vec::new();
        for u in arr_field(&v, "unsound")? {
            unsound.push(UnsoundCell {
                index: u64_field(u, "index")? as usize,
                test: str_field(u, "test")?.to_owned(),
                chip: str_field(u, "chip")?.to_owned(),
                outcomes: str_arr_field(u, "outcomes")?,
            });
        }
        let mut per_chip = Vec::new();
        for c in arr_field(&v, "per_chip")? {
            per_chip.push(ChipTotals {
                chip: str_field(c, "chip")?.to_owned(),
                cells: u64_field(c, "cells")?,
                runs: u64_field(c, "runs")?,
                witnessed_cells: u64_field(c, "witnessed_cells")?,
                witnesses: u64_field(c, "witnesses")?,
                unsound_cells: u64_field(c, "unsound_cells")?,
            });
        }
        let cache = match v.get("cache") {
            Some(c) => CacheStats {
                entries: u64_field(c, "entries")?,
                hits: u64_field(c, "hits")?,
                misses: u64_field(c, "misses")?,
                // Absent in pre-streaming reports; default rather than
                // reject so old shard artifacts still merge.
                enum_micros: c.get("enum_micros").and_then(Json::as_u64).unwrap_or(0),
                // Absent in pre-persistence reports, same treatment.
                warm_entries: c.get("warm_entries").and_then(Json::as_u64).unwrap_or(0),
                warm_hits: c.get("warm_hits").and_then(Json::as_u64).unwrap_or(0),
                // Absent in pre-incremental reports, same treatment.
                cut_attempt_micros: c
                    .get("cut_attempt_micros")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                registers_refilled: c
                    .get("registers_refilled")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
            },
            None => CacheStats::default(),
        };
        Ok(SweepReport {
            family: str_field(&v, "family")?.to_owned(),
            family_size: u64_field(&v, "family_size")?,
            shard,
            seed: u64_field(&v, "seed")?,
            iterations: u64_field(&v, "iterations")?,
            chips,
            tests_run: u64_field(&v, "tests_run")?,
            weak_tests: u64_field(&v, "weak_tests")?,
            cells: u64_field(&v, "cells")?,
            witnessed_cells: u64_field(&v, "witnessed_cells")?,
            total_runs: u64_field(&v, "total_runs")?,
            total_witnesses: u64_field(&v, "total_witnesses")?,
            unsound_cells: u64_field(&v, "unsound_cells")?,
            unsound,
            per_chip,
            cache,
        })
    }

    /// Merges shard reports back into one whole-family report.
    ///
    /// Every input must be a shard of the same sweep (same family, size,
    /// seed, iterations and chips; same shard count) and the shard
    /// indices must cover `1..=count` exactly once — a missing or
    /// duplicated shard is an error, not a silent undercount.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::Merge`] naming the first inconsistency.
    pub fn merge(reports: &[SweepReport]) -> Result<SweepReport, SweepError> {
        let first = reports
            .first()
            .ok_or_else(|| SweepError::Merge("no reports given".to_owned()))?;
        let count = match first.shard {
            Some(sh) => sh.count,
            None => {
                return Err(SweepError::Merge(
                    "report 1 is not a shard (shard: null)".to_owned(),
                ))
            }
        };
        let mut seen = vec![false; count];
        for (i, r) in reports.iter().enumerate() {
            let sh = r.shard.ok_or_else(|| {
                SweepError::Merge(format!("report {} is not a shard (shard: null)", i + 1))
            })?;
            if sh.count != count {
                return Err(SweepError::Merge(format!(
                    "report {} has shard count {}, expected {count}",
                    i + 1,
                    sh.count
                )));
            }
            let mismatch = if r.family != first.family {
                Some("family")
            } else if r.family_size != first.family_size {
                Some("family_size")
            } else if r.seed != first.seed {
                Some("seed")
            } else if r.iterations != first.iterations {
                Some("iterations")
            } else if r.chips != first.chips {
                Some("chips")
            } else {
                None
            };
            if let Some(what) = mismatch {
                return Err(SweepError::Merge(format!(
                    "report {} disagrees with report 1 on {what}",
                    i + 1
                )));
            }
            // The per_chip columns must line up with the chips list —
            // a truncated or reordered array would otherwise misattribute
            // the column sums below.
            if r.per_chip.len() != r.chips.len()
                || r.per_chip.iter().zip(&r.chips).any(|(p, c)| &p.chip != c)
            {
                return Err(SweepError::Merge(format!(
                    "report {}'s per_chip entries do not match its chips list",
                    i + 1
                )));
            }
            if seen[sh.index - 1] {
                return Err(SweepError::Merge(format!("duplicate shard {sh}")));
            }
            seen[sh.index - 1] = true;
        }
        let missing: Vec<String> = seen
            .iter()
            .enumerate()
            .filter(|(_, &s)| !s)
            .map(|(i, _)| format!("{}/{count}", i + 1))
            .collect();
        if !missing.is_empty() {
            return Err(SweepError::Merge(format!(
                "missing shard(s) {}",
                missing.join(", ")
            )));
        }

        let mut out = SweepReport {
            family: first.family.clone(),
            family_size: first.family_size,
            shard: None,
            seed: first.seed,
            iterations: first.iterations,
            chips: first.chips.clone(),
            tests_run: 0,
            weak_tests: 0,
            cells: 0,
            witnessed_cells: 0,
            total_runs: 0,
            total_witnesses: 0,
            unsound_cells: 0,
            unsound: Vec::new(),
            per_chip: first
                .chips
                .iter()
                .map(|chip| ChipTotals {
                    chip: chip.clone(),
                    cells: 0,
                    runs: 0,
                    witnessed_cells: 0,
                    witnesses: 0,
                    unsound_cells: 0,
                })
                .collect(),
            cache: CacheStats::default(),
        };
        for r in reports {
            out.tests_run += r.tests_run;
            out.weak_tests += r.weak_tests;
            out.cells += r.cells;
            out.witnessed_cells += r.witnessed_cells;
            out.total_runs += r.total_runs;
            out.total_witnesses += r.total_witnesses;
            out.unsound_cells += r.unsound_cells;
            out.unsound.extend(r.unsound.iter().cloned());
            for (acc, c) in out.per_chip.iter_mut().zip(&r.per_chip) {
                acc.cells += c.cells;
                acc.runs += c.runs;
                acc.witnessed_cells += c.witnessed_cells;
                acc.witnesses += c.witnesses;
                acc.unsound_cells += c.unsound_cells;
            }
            out.cache.entries += r.cache.entries;
            out.cache.hits += r.cache.hits;
            out.cache.misses += r.cache.misses;
            out.cache.enum_micros += r.cache.enum_micros;
            out.cache.warm_entries += r.cache.warm_entries;
            out.cache.warm_hits += r.cache.warm_hits;
            out.cache.cut_attempt_micros += r.cache.cut_attempt_micros;
            out.cache.registers_refilled += r.cache.registers_refilled;
        }
        if out.tests_run != out.family_size {
            return Err(SweepError::Merge(format!(
                "shards cover {} tests, family has {}",
                out.tests_run, out.family_size
            )));
        }
        // Canonical (test-major, chip-minor) order, matching an unsharded
        // run's report.
        let chip_pos = |chip: &str| {
            out.chips
                .iter()
                .position(|c| c == chip)
                .unwrap_or(usize::MAX)
        };
        out.unsound.sort_by_key(|a| (a.index, chip_pos(&a.chip)));
        Ok(out)
    }
}

fn arr_field<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], SweepError> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| SweepError::Json(format!("missing or non-array field {key}")))
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, SweepError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| SweepError::Json(format!("missing or non-string field {key}")))
}

fn str_arr_field(v: &Json, key: &str) -> Result<Vec<String>, SweepError> {
    arr_field(v, key)?
        .iter()
        .map(|x| {
            x.as_str()
                .map(str::to_owned)
                .ok_or_else(|| SweepError::Json(format!("non-string element in {key}")))
        })
        .collect()
}

fn u64_field(v: &Json, key: &str) -> Result<u64, SweepError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| SweepError::Json(format!("missing or non-integer field {key}")))
}

/// Runs the sweep. `family` must be the **complete** canonically-ordered
/// test family (strictly increasing names — `weakgpu_diy::generate`
/// guarantees this); when `cfg.shard` is set, this function selects the
/// shard's subset itself so global indices (and with them per-test
/// seeds) are shard-invariant.
///
/// # Errors
///
/// See [`run_sweep_with`].
pub fn run_sweep(family: &[LitmusTest], cfg: &SweepConfig) -> Result<SweepReport, SweepError> {
    run_sweep_with(family, cfg, |_| {})
}

/// Like [`run_sweep`], invoking `on_cell` as each cell completes —
/// cells finish out of order, so the callback must be thread-safe. Each
/// record carries its test's global index; the aggregate report is
/// always assembled in canonical order regardless of completion order.
///
/// # Errors
///
/// Returns the first configuration, compile/run, or enumeration error.
pub fn run_sweep_with<F>(
    family: &[LitmusTest],
    cfg: &SweepConfig,
    on_cell: F,
) -> Result<SweepReport, SweepError>
where
    F: Fn(&CellRecord) + Sync,
{
    if cfg.chips.is_empty() {
        return Err(SweepError::Config("no chips given".to_owned()));
    }
    if let Some(sh) = cfg.shard {
        sh.validate().map_err(SweepError::Config)?;
    }
    if let Some(w) = family.windows(2).find(|w| w[0].name() >= w[1].name()) {
        return Err(SweepError::Config(format!(
            "family is not in canonical order: {:?} before {:?}",
            w[0].name(),
            w[1].name()
        )));
    }

    let selected: Vec<(usize, &LitmusTest)> = family
        .iter()
        .enumerate()
        .filter(|(i, _)| cfg.shard.is_none_or(|sh| sh.selects(*i)))
        .collect();

    let num_chips = cfg.chips.len();
    let mut cells = Vec::with_capacity(selected.len() * num_chips);
    for &(i, test) in &selected {
        let inc = default_incantations(test);
        for &chip in &cfg.chips {
            cells.push(
                CellSpec::new(test.clone(), chip)
                    .incantations(inc)
                    .iterations(cfg.iterations)
                    .seed(cfg.seed ^ (i as u64)),
            );
        }
    }

    let model = ptx_model();
    let enum_cfg = EnumConfig {
        // Incremental evaluation only exists on the tree walk, so it
        // drags pruning in with it.
        pruning: cfg.pruning || cfg.incremental,
        batching: cfg.batching,
        incremental: cfg.incremental,
        ..EnumConfig::default()
    };
    let initial_cache = match &cfg.cache_file {
        Some(path) if path.exists() => {
            persist::load(path).map_err(|e| SweepError::Cache(e.to_string()))?
        }
        Some(path) if cfg.cache_readonly => {
            return Err(SweepError::Cache(format!(
                "{}: read-only cache file does not exist (a warm-start run must not silently go cold)",
                path.display()
            )));
        }
        _ => VerdictCache::new(),
    };
    let cache = Mutex::new(initial_cache);
    let enum_err: Mutex<Option<(String, EnumError)>> = Mutex::new(None);
    let records: Vec<Mutex<Option<CellRecord>>> = cells.iter().map(|_| Mutex::new(None)).collect();

    run_campaign_with(
        &cells,
        &CampaignConfig {
            parallelism: cfg.parallelism,
        },
        |ci, report| {
            let (gi, test) = selected[ci / num_chips];
            // Probe under a short lock; on a miss, enumerate with no lock
            // held (distinct shapes judge concurrently) and publish the
            // result. Two chips of one test racing may both enumerate —
            // first write wins, so `cache.misses >= cache.entries`.
            // Each campaign worker thread keeps its own evaluation
            // context, so every miss it judges reuses one relation arena
            // instead of reallocating per candidate execution.
            thread_local! {
                static EVAL_CTX: RefCell<EvalContext> = RefCell::new(EvalContext::new());
            }
            let (probed, mut cache_hits, mut cache_misses) = {
                let mut c = cache.lock().expect("no poisoned locks");
                (c.lookup(test, &model, &enum_cfg), c.hits(), c.misses())
            };
            let mut enum_micros = 0u64;
            let mut classes_visited = 0u64;
            let mut candidates_pruned = 0u64;
            let mut batches_formed = 0u64;
            let mut lanes_filled = 0u64;
            let mut cut_attempt_micros = 0u64;
            let mut registers_refilled = 0u64;
            let verdict = match probed {
                Some(v) => v,
                None => {
                    let t0 = Instant::now();
                    let judged = EVAL_CTX.with(|ctx| {
                        weakgpu_axiom::model_outcomes_counted(
                            test,
                            &model,
                            &enum_cfg,
                            &mut ctx.borrow_mut(),
                        )
                    });
                    enum_micros = t0.elapsed().as_micros() as u64;
                    match judged {
                        Ok((v, stats)) => {
                            (classes_visited, candidates_pruned) =
                                (stats.classes_visited, stats.candidates_pruned);
                            (batches_formed, lanes_filled) =
                                (stats.batches_formed, stats.lanes_filled);
                            (cut_attempt_micros, registers_refilled) =
                                (stats.cut_attempt_micros, stats.registers_refilled);
                            let mut c = cache.lock().expect("no poisoned locks");
                            let published = c.publish(test, &model, &enum_cfg, v);
                            (cache_hits, cache_misses) = (c.hits(), c.misses());
                            published
                        }
                        Err(e) => {
                            enum_err
                                .lock()
                                .expect("no poisoned locks")
                                .get_or_insert((test.name().to_owned(), e));
                            return;
                        }
                    }
                }
            };
            let unsound: Vec<String> = report
                .histogram
                .outcomes()
                .filter(|o| !verdict.allowed_outcomes.contains(*o))
                .map(|o| o.to_string())
                .collect();
            let record = CellRecord {
                test: test.name().to_owned(),
                index: gi,
                chip: report.chip.short().to_owned(),
                runs: report.histogram.total(),
                witnesses: report.witnesses,
                distinct: report.histogram.distinct(),
                unsound,
                cache_hits,
                cache_misses,
                enum_micros,
                classes_visited,
                candidates_pruned,
                batches_formed,
                lanes_filled,
                cut_attempt_micros,
                registers_refilled,
            };
            on_cell(&record);
            *records[ci].lock().expect("no poisoned locks") = Some(record);
        },
    )?;
    if let Some((test, e)) = enum_err.into_inner().expect("no poisoned locks") {
        return Err(SweepError::Enum(test, e));
    }

    let records: Vec<CellRecord> = records
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned locks")
                .expect("every cell produced a record")
        })
        .collect();

    let mut per_chip: Vec<ChipTotals> = cfg
        .chips
        .iter()
        .map(|c| ChipTotals {
            chip: c.short().to_owned(),
            cells: 0,
            runs: 0,
            witnessed_cells: 0,
            witnesses: 0,
            unsound_cells: 0,
        })
        .collect();
    let mut unsound = Vec::new();
    let mut weak_tests = 0u64;
    let mut witnessed_cells = 0u64;
    let mut total_runs = 0u64;
    let mut total_witnesses = 0u64;
    for chunk in records.chunks(num_chips) {
        if chunk.iter().any(|r| r.witnesses > 0) {
            weak_tests += 1;
        }
        for (r, totals) in chunk.iter().zip(per_chip.iter_mut()) {
            debug_assert_eq!(r.chip, totals.chip);
            totals.cells += 1;
            totals.runs += r.runs;
            totals.witnesses += r.witnesses;
            total_runs += r.runs;
            total_witnesses += r.witnesses;
            if r.witnesses > 0 {
                totals.witnessed_cells += 1;
                witnessed_cells += 1;
            }
            if !r.unsound.is_empty() {
                totals.unsound_cells += 1;
                unsound.push(UnsoundCell {
                    index: r.index,
                    test: r.test.clone(),
                    chip: r.chip.clone(),
                    outcomes: r.unsound.clone(),
                });
            }
        }
    }

    let enum_micros: u64 = records.iter().map(|r| r.enum_micros).sum();
    let cut_attempt_micros: u64 = records.iter().map(|r| r.cut_attempt_micros).sum();
    let registers_refilled: u64 = records.iter().map(|r| r.registers_refilled).sum();
    let cache = cache.into_inner().expect("no poisoned locks");
    if let Some(path) = &cfg.cache_file {
        if !cfg.cache_readonly {
            persist::save(path, &cache).map_err(|e| SweepError::Cache(e.to_string()))?;
        }
    }
    Ok(SweepReport {
        family: cfg.family.clone(),
        family_size: family.len() as u64,
        shard: cfg.shard,
        seed: cfg.seed,
        iterations: cfg.iterations as u64,
        chips: cfg.chips.iter().map(|c| c.short().to_owned()).collect(),
        tests_run: selected.len() as u64,
        weak_tests,
        cells: records.len() as u64,
        witnessed_cells,
        total_runs,
        total_witnesses,
        unsound_cells: unsound.len() as u64,
        unsound,
        per_chip,
        cache: CacheStats {
            entries: cache.len() as u64,
            hits: cache.hits(),
            misses: cache.misses(),
            enum_micros,
            warm_entries: cache.warm_entries(),
            warm_hits: cache.warm_hits(),
            cut_attempt_micros,
            registers_refilled,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_parsing() {
        assert_eq!(Shard::parse("1/4").unwrap(), Shard { index: 1, count: 4 });
        assert_eq!(Shard::parse("7/7").unwrap(), Shard { index: 7, count: 7 });
        assert!(Shard::parse("0/4").is_err());
        assert!(Shard::parse("5/4").is_err());
        assert!(Shard::parse("1/0").is_err());
        assert!(Shard::parse("1-4").is_err());
        assert!(Shard::parse("a/b").is_err());
        assert_eq!(Shard::parse("2/4").unwrap().to_string(), "2/4");
    }

    #[test]
    fn shard_partition_is_disjoint_and_exhaustive() {
        for count in [1usize, 2, 4, 7] {
            for i in 0..1000 {
                let owners: Vec<usize> = (1..=count)
                    .filter(|&k| Shard { index: k, count }.selects(i))
                    .collect();
                assert_eq!(owners.len(), 1, "index {i} with {count} shards: {owners:?}");
            }
        }
    }

    fn tiny_report(index: usize, count: usize) -> SweepReport {
        SweepReport {
            family: "small".to_owned(),
            family_size: 10,
            shard: Some(Shard { index, count }),
            seed: 7,
            iterations: 100,
            chips: vec!["Titan".to_owned()],
            tests_run: 10 / count as u64 + u64::from(index <= 10 % count),
            weak_tests: 1,
            cells: 5,
            witnessed_cells: 2,
            total_runs: 500,
            total_witnesses: 3,
            unsound_cells: 0,
            unsound: Vec::new(),
            per_chip: vec![ChipTotals {
                chip: "Titan".to_owned(),
                cells: 5,
                runs: 500,
                witnessed_cells: 2,
                witnesses: 3,
                unsound_cells: 0,
            }],
            cache: CacheStats {
                entries: 5,
                hits: 0,
                misses: 5,
                enum_micros: 120,
                warm_entries: 2,
                warm_hits: 1,
                cut_attempt_micros: 30,
                registers_refilled: 9,
            },
        }
    }

    #[test]
    fn json_roundtrip() {
        let mut r = tiny_report(2, 4);
        r.unsound = vec![UnsoundCell {
            index: 3,
            test: "PodWR-Fre-PodWR-Fre+inter".to_owned(),
            chip: "Titan".to_owned(),
            outcomes: vec!["0:r0=1; 1:r0=1; ".to_owned()],
        }];
        r.unsound_cells = 1;
        let parsed = SweepReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        // And an unsharded report.
        let mut u = tiny_report(1, 1);
        u.shard = None;
        assert_eq!(SweepReport::from_json(&u.to_json()).unwrap(), u);
    }

    #[test]
    fn from_json_rejects_bad_documents() {
        assert!(SweepReport::from_json("not json").is_err());
        assert!(SweepReport::from_json("{}").is_err());
        let wrong_schema = tiny_report(1, 2).to_json().replace(SCHEMA, "other/9");
        assert!(SweepReport::from_json(&wrong_schema).is_err());
    }

    #[test]
    fn merge_requires_all_shards() {
        let r1 = tiny_report(1, 2);
        let err = SweepReport::merge(std::slice::from_ref(&r1)).unwrap_err();
        assert!(err.to_string().contains("missing shard(s) 2/2"), "{err}");
        let err = SweepReport::merge(&[r1.clone(), r1.clone()]).unwrap_err();
        assert!(err.to_string().contains("duplicate shard"), "{err}");
        let err = SweepReport::merge(&[]).unwrap_err();
        assert!(err.to_string().contains("no reports"), "{err}");
        let mut unsharded = r1.clone();
        unsharded.shard = None;
        assert!(SweepReport::merge(&[unsharded]).is_err());
    }

    #[test]
    fn merge_rejects_misaligned_per_chip() {
        let r1 = tiny_report(1, 2);
        let mut r2 = tiny_report(2, 2);
        r2.per_chip[0].chip = "GTX7".to_owned();
        let err = SweepReport::merge(&[r1.clone(), r2]).unwrap_err();
        assert!(err.to_string().contains("per_chip"), "{err}");
        let mut r3 = tiny_report(2, 2);
        r3.per_chip.clear();
        let err = SweepReport::merge(&[r1, r3]).unwrap_err();
        assert!(err.to_string().contains("per_chip"), "{err}");
    }

    #[test]
    fn merge_rejects_mismatched_runs() {
        let r1 = tiny_report(1, 2);
        let mut r2 = tiny_report(2, 2);
        r2.seed = 8;
        let err = SweepReport::merge(&[r1, r2]).unwrap_err();
        assert!(err.to_string().contains("seed"), "{err}");
    }

    #[test]
    fn merge_sums_and_unshards() {
        let merged = SweepReport::merge(&[tiny_report(2, 2), tiny_report(1, 2)]).unwrap();
        assert_eq!(merged.shard, None);
        assert_eq!(merged.tests_run, 10);
        assert_eq!(merged.cells, 10);
        assert_eq!(merged.total_runs, 1000);
        assert_eq!(merged.total_witnesses, 6);
        assert_eq!(merged.per_chip[0].runs, 1000);
        assert_eq!(merged.cache.misses, 10);
        assert_eq!(merged.cache.enum_micros, 240);
        assert_eq!(merged.cache.warm_entries, 4);
        assert_eq!(merged.cache.warm_hits, 2);
        assert_eq!(merged.cache.cut_attempt_micros, 60);
        assert_eq!(merged.cache.registers_refilled, 18);
        assert!(merged.is_sound());
    }

    #[test]
    fn cell_record_jsonl_is_valid_json() {
        let rec = CellRecord {
            test: "Fre-Rfe+inter \"quoted\"".to_owned(),
            index: 12,
            chip: "Titan".to_owned(),
            runs: 100,
            witnesses: 1,
            distinct: 3,
            unsound: vec!["1:r1=7; ".to_owned()],
            cache_hits: 3,
            cache_misses: 9,
            enum_micros: 42,
            classes_visited: 17,
            candidates_pruned: 5,
            batches_formed: 2,
            lanes_filled: 48,
            cut_attempt_micros: 7,
            registers_refilled: 21,
        };
        let v = json::parse(&rec.to_jsonl()).unwrap();
        assert_eq!(v.get("index").unwrap().as_u64(), Some(12));
        assert_eq!(v.get("test").unwrap().as_str(), Some(rec.test.as_str()));
        assert_eq!(v.get("unsound").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("cache_hits").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("cache_misses").unwrap().as_u64(), Some(9));
        assert_eq!(v.get("enum_micros").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("classes_visited").unwrap().as_u64(), Some(17));
        assert_eq!(v.get("candidates_pruned").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("batches_formed").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("lanes_filled").unwrap().as_u64(), Some(48));
        assert_eq!(v.get("cut_attempt_micros").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("registers_refilled").unwrap().as_u64(), Some(21));
    }

    #[test]
    fn cache_stats_survive_json_and_tolerate_old_reports() {
        let r = tiny_report(1, 2);
        let parsed = SweepReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.cache.enum_micros, 120);
        assert_eq!(parsed.cache.warm_entries, 2);
        assert_eq!(parsed.cache.warm_hits, 1);
        assert_eq!(parsed.cache.cut_attempt_micros, 30);
        assert_eq!(parsed.cache.registers_refilled, 9);
        // A pre-streaming report without the timing, warm, or
        // incremental fields still parses.
        let legacy = r
            .to_json()
            .replace(", \"enum_micros\": 120", "")
            .replace(", \"warm_entries\": 2, \"warm_hits\": 1", "")
            .replace(", \"cut_attempt_micros\": 30, \"registers_refilled\": 9", "");
        let parsed = SweepReport::from_json(&legacy).unwrap();
        assert_eq!(parsed.cache.enum_micros, 0);
        assert_eq!(parsed.cache.warm_entries, 0);
        assert_eq!(parsed.cache.warm_hits, 0);
        assert_eq!(parsed.cache.cut_attempt_micros, 0);
        assert_eq!(parsed.cache.registers_refilled, 0);
        assert_eq!(parsed.cache.misses, 5);
    }
}
