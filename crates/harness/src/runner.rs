//! The iteration runner: executes a litmus test thousands of times on a
//! simulated chip, in parallel batches, and histograms the outcomes.
//!
//! # Reproducibility
//!
//! A run's iterations are split into [`STREAM_CHUNKS`] logical chunks
//! whose RNG streams derive purely from the base seed and the chunk
//! index. Worker threads pick chunks up in any order, and chunk
//! histograms merge commutatively — so the full histogram is a pure
//! function of `(test, chip, incantations, iterations, seed)`:
//! bit-identical on any machine, at any `parallelism` setting.

use std::fmt;

use weakgpu_litmus::LitmusTest;
use weakgpu_sim::chip::{Chip, Incantations};
use weakgpu_sim::machine::RunError;
use weakgpu_sim::program::CompileError;

use crate::campaign::{run_campaign, CampaignConfig, CellSpec};
use crate::histogram::Histogram;

/// Number of logical RNG streams a run is split into. Fixed (never
/// derived from the host's core count) so histograms are
/// machine-independent; larger than any plausible worker count so the
/// pool still load-balances.
pub const STREAM_CHUNKS: usize = 64;

/// The per-chunk iteration counts for a run of `iterations`: at most
/// [`STREAM_CHUNKS`] chunks, sizes differing by at most one, depending
/// only on `iterations`.
pub(crate) fn chunk_sizes(iterations: usize) -> Vec<usize> {
    let n = iterations.min(STREAM_CHUNKS);
    if n == 0 {
        return Vec::new();
    }
    let base = iterations / n;
    let rem = iterations % n;
    (0..n).map(|i| base + usize::from(i < rem)).collect()
}

/// The RNG seed of logical chunk `idx` for base seed `seed` (a golden-ratio
/// stride keeps neighbouring streams decorrelated).
pub(crate) fn chunk_seed(seed: u64, idx: usize) -> u64 {
    seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(idx as u64 + 1))
}

/// Configuration of one harness invocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunConfig {
    /// Number of runs (the paper uses 100 000).
    pub iterations: usize,
    /// Incantation combination.
    pub incantations: Incantations,
    /// Base RNG seed; logical chunk streams derive from it independently
    /// of worker count.
    pub seed: u64,
    /// Worker threads (`None` = all available cores). Affects wall-clock
    /// time only, never the histogram.
    pub parallelism: Option<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            iterations: 100_000,
            incantations: Incantations::all_on(),
            seed: 0x5eed,
            parallelism: None,
        }
    }
}

impl RunConfig {
    /// Paper-scale config: 100k iterations at the given incantations.
    pub fn paper(incantations: Incantations) -> Self {
        RunConfig {
            incantations,
            ..RunConfig::default()
        }
    }

    /// A quick config for tests and examples.
    pub fn quick(iterations: usize) -> Self {
        RunConfig {
            iterations,
            ..RunConfig::default()
        }
    }
}

/// Harness failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HarnessError {
    /// The test failed to compile for the simulator.
    Compile(CompileError),
    /// A run failed.
    Run(RunError),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Compile(e) => write!(f, "compile error: {e}"),
            HarnessError::Run(e) => write!(f, "run error: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<CompileError> for HarnessError {
    fn from(e: CompileError) -> Self {
        HarnessError::Compile(e)
    }
}

impl From<RunError> for HarnessError {
    fn from(e: RunError) -> Self {
        HarnessError::Run(e)
    }
}

/// The result of running one test on one chip.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TestReport {
    /// Test name.
    pub test: String,
    /// Chip it ran on.
    pub chip: Chip,
    /// Incantations used.
    pub incantations: Incantations,
    /// Full outcome histogram.
    pub histogram: Histogram,
    /// Runs witnessing the final condition (the paper's `obs` number).
    pub witnesses: u64,
}

impl TestReport {
    /// Witnesses normalised to the paper's `obs/100k` scale.
    pub fn obs_per_100k(&self) -> u64 {
        let total = self.histogram.total();
        if total == 0 {
            0
        } else {
            (self.witnesses as u128 * 100_000 / total as u128) as u64
        }
    }
}

/// Runs `test` on `chip` for `cfg.iterations` runs and histograms the
/// outcomes.
///
/// A single-cell campaign (see [`crate::campaign`]): the iterations are
/// split into [`STREAM_CHUNKS`] seed-derived logical chunks drained by a
/// worker pool, so the histogram is bit-identical for a fixed seed on any
/// machine and at any `parallelism`.
///
/// # Errors
///
/// Returns a [`HarnessError`] if the test cannot be compiled or a run
/// fails (e.g. a livelocked spin loop).
pub fn run_test(
    test: &LitmusTest,
    chip: Chip,
    cfg: &RunConfig,
) -> Result<TestReport, HarnessError> {
    let cells = [CellSpec::from_config(test.clone(), chip, cfg)];
    let mut reports = run_campaign(
        &cells,
        &CampaignConfig {
            parallelism: cfg.parallelism,
        },
    )?;
    Ok(reports.pop().expect("one report per cell"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_litmus::corpus;
    use weakgpu_litmus::ThreadScope;

    #[test]
    fn totals_match_iterations() {
        let cfg = RunConfig::quick(1234);
        let r = run_test(&corpus::corr(), Chip::GtxTitan, &cfg).unwrap();
        assert_eq!(r.histogram.total(), 1234);
        assert_eq!(r.test, "coRR");
        assert_eq!(r.chip, Chip::GtxTitan);
    }

    #[test]
    fn reproducible_across_invocations() {
        let cfg = RunConfig {
            iterations: 3000,
            parallelism: Some(4),
            ..RunConfig::default()
        };
        let test = corpus::mp(ThreadScope::InterCta, None);
        let a = run_test(&test, Chip::GtxTitan, &cfg).unwrap();
        let b = run_test(&test, Chip::GtxTitan, &cfg).unwrap();
        assert_eq!(a.histogram, b.histogram);
    }

    #[test]
    fn obs_normalisation() {
        let cfg = RunConfig {
            iterations: 50_000,
            incantations: Incantations::all_on(),
            ..RunConfig::default()
        };
        let r = run_test(&corpus::corr(), Chip::GtxTitan, &cfg).unwrap();
        assert!(r.witnesses > 0);
        let per100k = r.obs_per_100k();
        assert!(per100k >= r.witnesses, "normalising 50k to 100k doubles");
    }

    #[test]
    fn zero_iterations_is_empty() {
        let cfg = RunConfig::quick(0);
        let r = run_test(&corpus::corr(), Chip::Gtx280, &cfg).unwrap();
        assert_eq!(r.histogram.total(), 0);
        assert_eq!(r.obs_per_100k(), 0);
    }

    #[test]
    fn single_worker_matches_multi_worker_totals() {
        // Strengthened from totals to full histograms: RNG streams are
        // per logical chunk, not per worker, so worker count must not
        // shift a single outcome count.
        let test = corpus::sb(ThreadScope::InterCta, None);
        let mk = |par| RunConfig {
            iterations: 2000,
            parallelism: Some(par),
            ..RunConfig::default()
        };
        let one = run_test(&test, Chip::GtxTitan, &mk(1)).unwrap();
        let four = run_test(&test, Chip::GtxTitan, &mk(4)).unwrap();
        assert_eq!(one.histogram.total(), four.histogram.total());
        assert_eq!(one.histogram, four.histogram);
    }

    #[test]
    fn chunk_sizes_partition_iterations() {
        for iterations in [0usize, 1, 7, 63, 64, 65, 1000, 100_000] {
            let sizes = chunk_sizes(iterations);
            assert_eq!(sizes.iter().sum::<usize>(), iterations);
            assert!(sizes.len() <= STREAM_CHUNKS);
            if iterations > 0 {
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "{iterations}: uneven chunks {sizes:?}");
                assert!(*min >= 1);
            }
        }
    }

    #[test]
    fn chunk_seeds_are_distinct() {
        let seeds: std::collections::BTreeSet<u64> =
            (0..STREAM_CHUNKS).map(|i| chunk_seed(0x5eed, i)).collect();
        assert_eq!(seeds.len(), STREAM_CHUNKS);
    }
}
