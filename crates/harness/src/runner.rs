//! The iteration runner: executes a litmus test thousands of times on a
//! simulated chip, in parallel batches, and histograms the outcomes.

use std::fmt;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use weakgpu_litmus::LitmusTest;
use weakgpu_sim::chip::{Chip, Incantations};
use weakgpu_sim::machine::{RunError, Simulator};
use weakgpu_sim::program::CompileError;

use crate::histogram::Histogram;

/// Configuration of one harness invocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunConfig {
    /// Number of runs (the paper uses 100 000).
    pub iterations: usize,
    /// Incantation combination.
    pub incantations: Incantations,
    /// Base RNG seed; each worker derives its own stream from it.
    pub seed: u64,
    /// Worker threads (`None` = all available cores).
    pub parallelism: Option<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            iterations: 100_000,
            incantations: Incantations::all_on(),
            seed: 0x5eed,
            parallelism: None,
        }
    }
}

impl RunConfig {
    /// Paper-scale config: 100k iterations at the given incantations.
    pub fn paper(incantations: Incantations) -> Self {
        RunConfig {
            incantations,
            ..RunConfig::default()
        }
    }

    /// A quick config for tests and examples.
    pub fn quick(iterations: usize) -> Self {
        RunConfig {
            iterations,
            ..RunConfig::default()
        }
    }
}

/// Harness failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HarnessError {
    /// The test failed to compile for the simulator.
    Compile(CompileError),
    /// A run failed.
    Run(RunError),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Compile(e) => write!(f, "compile error: {e}"),
            HarnessError::Run(e) => write!(f, "run error: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<CompileError> for HarnessError {
    fn from(e: CompileError) -> Self {
        HarnessError::Compile(e)
    }
}

impl From<RunError> for HarnessError {
    fn from(e: RunError) -> Self {
        HarnessError::Run(e)
    }
}

/// The result of running one test on one chip.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TestReport {
    /// Test name.
    pub test: String,
    /// Chip it ran on.
    pub chip: Chip,
    /// Incantations used.
    pub incantations: Incantations,
    /// Full outcome histogram.
    pub histogram: Histogram,
    /// Runs witnessing the final condition (the paper's `obs` number).
    pub witnesses: u64,
}

impl TestReport {
    /// Witnesses normalised to the paper's `obs/100k` scale.
    pub fn obs_per_100k(&self) -> u64 {
        let total = self.histogram.total();
        if total == 0 {
            0
        } else {
            (self.witnesses as u128 * 100_000 / total as u128) as u64
        }
    }
}

/// Runs `test` on `chip` for `cfg.iterations` runs and histograms the
/// outcomes.
///
/// Runs are split across worker threads; each worker seeds its own
/// [`SmallRng`] from `cfg.seed` and its worker index, so results are
/// reproducible for a fixed `(seed, parallelism)` pair regardless of
/// thread scheduling.
///
/// # Errors
///
/// Returns a [`HarnessError`] if the test cannot be compiled or a run
/// fails (e.g. a livelocked spin loop).
pub fn run_test(test: &LitmusTest, chip: Chip, cfg: &RunConfig) -> Result<TestReport, HarnessError> {
    let sim = Simulator::compile(test, chip)?;
    let weights = chip.profile().weights(&cfg.incantations);
    let workers = cfg
        .parallelism
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(cfg.iterations.max(1));

    let chunk = cfg.iterations / workers;
    let remainder = cfg.iterations % workers;
    let thread_rand = cfg.incantations.thread_rand;

    let results: Vec<Result<Histogram, RunError>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let n = chunk + usize::from(w < remainder);
            let sim = &sim;
            let weights = &weights;
            let seed = cfg.seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(w as u64 + 1));
            handles.push(scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut h = Histogram::new();
                for _ in 0..n {
                    let outcome = sim.run_once_with_weights(weights, thread_rand, &mut rng)?;
                    h.record(outcome);
                }
                Ok(h)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut histogram = Histogram::new();
    for r in results {
        histogram.merge(r?);
    }
    let witnesses = histogram.witnesses(test.cond());
    Ok(TestReport {
        test: test.name().to_owned(),
        chip,
        incantations: cfg.incantations,
        histogram,
        witnesses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_litmus::corpus;
    use weakgpu_litmus::ThreadScope;

    #[test]
    fn totals_match_iterations() {
        let cfg = RunConfig::quick(1234);
        let r = run_test(&corpus::corr(), Chip::GtxTitan, &cfg).unwrap();
        assert_eq!(r.histogram.total(), 1234);
        assert_eq!(r.test, "coRR");
        assert_eq!(r.chip, Chip::GtxTitan);
    }

    #[test]
    fn reproducible_across_invocations() {
        let cfg = RunConfig {
            iterations: 3000,
            parallelism: Some(4),
            ..RunConfig::default()
        };
        let test = corpus::mp(ThreadScope::InterCta, None);
        let a = run_test(&test, Chip::GtxTitan, &cfg).unwrap();
        let b = run_test(&test, Chip::GtxTitan, &cfg).unwrap();
        assert_eq!(a.histogram, b.histogram);
    }

    #[test]
    fn obs_normalisation() {
        let cfg = RunConfig {
            iterations: 50_000,
            incantations: Incantations::all_on(),
            ..RunConfig::default()
        };
        let r = run_test(&corpus::corr(), Chip::GtxTitan, &cfg).unwrap();
        assert!(r.witnesses > 0);
        let per100k = r.obs_per_100k();
        assert!(per100k >= r.witnesses, "normalising 50k to 100k doubles");
    }

    #[test]
    fn zero_iterations_is_empty() {
        let cfg = RunConfig::quick(0);
        let r = run_test(&corpus::corr(), Chip::Gtx280, &cfg).unwrap();
        assert_eq!(r.histogram.total(), 0);
        assert_eq!(r.obs_per_100k(), 0);
    }

    #[test]
    fn single_worker_matches_multi_worker_totals() {
        let test = corpus::sb(ThreadScope::InterCta, None);
        let mk = |par| RunConfig {
            iterations: 2000,
            parallelism: Some(par),
            ..RunConfig::default()
        };
        let one = run_test(&test, Chip::GtxTitan, &mk(1)).unwrap();
        let four = run_test(&test, Chip::GtxTitan, &mk(4)).unwrap();
        assert_eq!(one.histogram.total(), four.histogram.total());
    }
}
