//! Outcome histograms — the per-test result of a harness run, mirroring
//! the complete histograms the paper publishes in its online material.

use std::collections::BTreeMap;
use std::fmt;

use weakgpu_litmus::{FinalCond, Outcome};

/// Counts of each observed final state.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Histogram {
    counts: BTreeMap<Outcome, u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation of `outcome`.
    pub fn record(&mut self, outcome: Outcome) {
        self.add(outcome, 1);
    }

    /// Records `n` observations of `outcome` at once (batch collection).
    pub fn add(&mut self, outcome: Outcome, n: u64) {
        *self.counts.entry(outcome).or_insert(0) += n;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: Histogram) {
        for (o, n) in other.counts {
            *self.counts.entry(o).or_insert(0) += n;
        }
    }

    /// Total number of recorded runs.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct outcomes.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Count of a particular outcome.
    pub fn count(&self, outcome: &Outcome) -> u64 {
        self.counts.get(outcome).copied().unwrap_or(0)
    }

    /// Number of runs witnessing the final condition (the paper's `obs`).
    pub fn witnesses(&self, cond: &FinalCond) -> u64 {
        self.counts
            .iter()
            .filter(|(o, _)| cond.witnessed_by(o))
            .map(|(_, n)| n)
            .sum()
    }

    /// Iterates `(outcome, count)` in canonical outcome order.
    pub fn iter(&self) -> impl Iterator<Item = (&Outcome, u64)> {
        self.counts.iter().map(|(o, n)| (o, *n))
    }

    /// The distinct outcomes observed.
    pub fn outcomes(&self) -> impl Iterator<Item = &Outcome> {
        self.counts.keys()
    }
}

impl FromIterator<Outcome> for Histogram {
    fn from_iter<I: IntoIterator<Item = Outcome>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for o in iter {
            h.record(o);
        }
        h
    }
}

impl fmt::Display for Histogram {
    /// Renders in the litmus-tool style: one `count  :> outcome` per line,
    /// most frequent first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut rows: Vec<_> = self.counts.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        for (o, n) in rows {
            writeln!(f, "{n:>8}  :> {o}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_litmus::{FinalExpr, Predicate};

    fn outcome(r1: i64, r2: i64) -> Outcome {
        [(FinalExpr::reg(1, "r1"), r1), (FinalExpr::reg(1, "r2"), r2)]
            .into_iter()
            .collect()
    }

    #[test]
    fn record_and_count() {
        let mut h = Histogram::new();
        h.record(outcome(0, 0));
        h.record(outcome(0, 0));
        h.record(outcome(1, 0));
        assert_eq!(h.total(), 3);
        assert_eq!(h.distinct(), 2);
        assert_eq!(h.count(&outcome(0, 0)), 2);
        assert_eq!(h.count(&outcome(1, 1)), 0);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a: Histogram = [outcome(0, 0), outcome(1, 0)].into_iter().collect();
        let b: Histogram = [outcome(1, 0), outcome(1, 1)].into_iter().collect();
        a.merge(b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(&outcome(1, 0)), 2);
    }

    #[test]
    fn witnesses_counts_condition_hits() {
        let h: Histogram = [outcome(1, 0), outcome(1, 0), outcome(1, 1), outcome(0, 0)]
            .into_iter()
            .collect();
        let cond =
            FinalCond::exists(Predicate::reg_eq(1, "r1", 1).and(Predicate::reg_eq(1, "r2", 0)));
        assert_eq!(h.witnesses(&cond), 2);
    }

    #[test]
    fn display_sorted_by_frequency() {
        let h: Histogram = [outcome(0, 0), outcome(0, 0), outcome(1, 1)]
            .into_iter()
            .collect();
        let s = h.to_string();
        let first = s.lines().next().unwrap();
        assert!(first.contains("2"), "{s}");
        assert!(first.contains("1:r1=0"), "{s}");
    }
}
