//! Incantation tuning: find the combination that provokes a test's weak
//! behaviour most often — how the paper selects the "most effective
//! incantations" for its figures (Sec. 4.3, Tab. 6).

use weakgpu_litmus::LitmusTest;
use weakgpu_sim::chip::{Chip, Incantations};

use crate::runner::{run_test, HarnessError, RunConfig, TestReport};

/// The outcome of sweeping all 16 incantation combinations.
#[derive(Clone, Debug)]
pub struct TuningReport {
    /// Per-column results, in Tab. 6 column order.
    pub columns: Vec<TestReport>,
    /// Index (0-based) of the most effective column.
    pub best: usize,
}

impl TuningReport {
    /// The most effective combination.
    pub fn best_incantations(&self) -> Incantations {
        self.columns[self.best].incantations
    }

    /// The witness count of the best column.
    pub fn best_witnesses(&self) -> u64 {
        self.columns[self.best].witnesses
    }

    /// The Tab. 6-style row of witness counts.
    pub fn row(&self) -> Vec<u64> {
        self.columns.iter().map(|r| r.witnesses).collect()
    }
}

/// Runs `test` on `chip` under all 16 incantation combinations with
/// `iterations_per_column` runs each, reporting the most effective column
/// (ties break toward the earliest column, like the paper's tables).
///
/// # Errors
///
/// Propagates harness failures.
pub fn tune(
    test: &LitmusTest,
    chip: Chip,
    iterations_per_column: usize,
    seed: u64,
) -> Result<TuningReport, HarnessError> {
    let mut columns = Vec::with_capacity(16);
    for (i, inc) in Incantations::all_combinations().into_iter().enumerate() {
        let cfg = RunConfig {
            iterations: iterations_per_column,
            incantations: inc,
            seed: seed.wrapping_add(i as u64),
            parallelism: None,
        };
        columns.push(run_test(test, chip, &cfg)?);
    }
    let best = columns
        .iter()
        .enumerate()
        .max_by_key(|(i, r)| (r.witnesses, usize::MAX - i))
        .map(|(i, _)| i)
        .unwrap_or(0);
    Ok(TuningReport { columns, best })
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_litmus::{corpus, ThreadScope};

    #[test]
    fn corr_tunes_to_an_all_on_style_column() {
        // Tab. 6: coRR peaks in column 16 (all incantations) on the Titan.
        let report = tune(&corpus::corr(), Chip::GtxTitan, 4_000, 7).unwrap();
        assert_eq!(report.columns.len(), 16);
        let best = report.best_incantations();
        assert!(best.memory_stress || best.bank_conflicts);
        assert!(best.thread_rand, "thread randomisation drives coRR");
        assert!(report.best_witnesses() > 0);
    }

    #[test]
    fn inter_cta_tests_tune_to_memory_stress_columns() {
        // Tab. 6: sb/mp need memory stress; column 12 peaks.
        let test = corpus::sb(ThreadScope::InterCta, None);
        let report = tune(&test, Chip::GtxTitan, 4_000, 11).unwrap();
        let best = report.best_incantations();
        assert!(best.memory_stress);
        assert!(!best.bank_conflicts, "bank conflicts dampen inter-CTA sb");
        // The first eight columns (no stress) witness nothing.
        assert!(report.row()[..8].iter().all(|&w| w == 0));
    }

    #[test]
    fn strong_chips_tune_to_zero_everywhere() {
        let report = tune(&corpus::corr(), Chip::Gtx280, 1_000, 3).unwrap();
        assert_eq!(report.best_witnesses(), 0);
        assert!(report.row().iter().all(|&w| w == 0));
    }
}
