//! A stochastic operational simulator of GPU memory systems — the
//! hardware substitute for the paper's testbed of deployed chips (Tab. 1).
//!
//! # Why a simulator
//!
//! The paper runs litmus tests on real Nvidia and AMD silicon. This
//! reproduction has no GPUs (and Rust's kernel-level GPU control is too
//! thin for litmus-grade codegen control), so the role of "ground truth
//! hardware" is played by [`machine::Simulator`]: an operational model
//! with
//!
//! * per-thread **in-flight memory-op windows** whose out-of-order
//!   completion is governed by per-chip probabilities for each reordering
//!   class (write-write, write-read, read-write, read-read, and the
//!   same-location read-read hazard behind `coRR`),
//! * a shared **L2** point of coherence and per-SM **L1** lines that can
//!   go stale, reproducing the `.ca`-operator behaviours of Sec. 3.1.2
//!   (`mp-L1`, `coRR-L2-L1`), including the Tesla C2075's
//!   fence-ineffective L1,
//! * scoped **fences**, with cta-scope fences probabilistically failing to
//!   order inter-CTA communication (the model-sanctioned leak the paper
//!   observes on Kepler),
//! * **atomics** performed in one step at the point of coherence.
//!
//! The design guarantees that, for `.cg`/global-memory programs, every
//! reachable outcome is allowed by the paper's axiomatic model: ops never
//! bypass dependencies, effective fences, or same-location write-write /
//! read-write / write-read pairs. The validation suite asserts exactly
//! this (simulated observations ⊆ model-allowed outcomes).
//!
//! [`chip::Chip`] provides profiles for all eight chips of Tab. 1, with
//! reordering rates calibrated to the `obs/100k` magnitudes of the paper's
//! figures, and [`chip::Incantations`] scales them with the Tab. 6 effect
//! tables.
//!
//! ```
//! use weakgpu_sim::{chip::{Chip, Incantations}, machine::Simulator};
//! use weakgpu_litmus::corpus;
//!
//! let sim = Simulator::compile(&corpus::corr(), Chip::GtxTitan).unwrap();
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
//! use rand::SeedableRng;
//! let outcome = sim.run_once(&Incantations::all_on(), &mut rng).unwrap();
//! assert_eq!(outcome.len(), 2); // r1 and r2 observed
//! ```

pub mod chip;
pub mod machine;
pub mod program;

pub use chip::{Chip, ChipProfile, Incantations, Vendor};
pub use machine::{MachineState, ObsCounts, RunError, Simulator};
pub use program::SimProgram;
