//! Compilation of a [`LitmusTest`] into the simulator's internal form:
//! registers and locations resolved to dense indices, labels resolved to
//! instruction offsets.

use std::collections::BTreeMap;
use std::fmt;

use weakgpu_litmus::{
    CacheOp, FenceScope, FinalExpr, Instr, Label, LitmusTest, Loc, Operand, Region, Value,
};

/// A compile-time-resolved value: integer or location pointer. `Copy`, for
/// the 100k-iteration hot loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimValue {
    /// An integer.
    Int(i64),
    /// The address of location `LocId`.
    Ptr(u32),
}

impl SimValue {
    /// The integer payload, or 0 for pointers (hardware register readout).
    pub fn as_int(self) -> i64 {
        match self {
            SimValue::Int(n) => n,
            SimValue::Ptr(_) => 0,
        }
    }
}

/// A resolved operand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimOperand {
    /// Register index (within the thread).
    Reg(u32),
    /// Immediate.
    Imm(i64),
    /// Address of a location.
    Sym(u32),
}

/// A resolved instruction. Mirrors [`weakgpu_litmus::Instr`] with indices
/// instead of names; `Bra` targets are instruction offsets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimOp {
    /// Load.
    Ld {
        /// Destination register.
        dst: u32,
        /// Address operand.
        addr: SimOperand,
        /// Cache operator.
        cache: CacheOp,
        /// Volatile marker.
        volatile: bool,
    },
    /// Store.
    St {
        /// Address operand.
        addr: SimOperand,
        /// Source operand.
        src: SimOperand,
        /// Volatile marker.
        volatile: bool,
    },
    /// Compare-and-swap.
    Cas {
        /// Destination (old value).
        dst: u32,
        /// Address operand.
        addr: SimOperand,
        /// Expected value.
        expected: SimOperand,
        /// Swapped-in value.
        desired: SimOperand,
    },
    /// Atomic exchange.
    Exch {
        /// Destination (old value).
        dst: u32,
        /// Address operand.
        addr: SimOperand,
        /// New value.
        src: SimOperand,
    },
    /// Atomic increment.
    Inc {
        /// Destination (old value).
        dst: u32,
        /// Address operand.
        addr: SimOperand,
    },
    /// Fence.
    Membar(FenceScope),
    /// Register move.
    Mov {
        /// Destination register.
        dst: u32,
        /// Source.
        src: SimOperand,
    },
    /// Addition (pointer-aware).
    Add {
        /// Destination register.
        dst: u32,
        /// Left operand.
        a: SimOperand,
        /// Right operand.
        b: SimOperand,
    },
    /// Bitwise and.
    And {
        /// Destination register.
        dst: u32,
        /// Left operand.
        a: SimOperand,
        /// Right operand.
        b: SimOperand,
    },
    /// Bitwise xor.
    Xor {
        /// Destination register.
        dst: u32,
        /// Left operand.
        a: SimOperand,
        /// Right operand.
        b: SimOperand,
    },
    /// Width conversion (value-preserving).
    Cvt {
        /// Destination register.
        dst: u32,
        /// Source.
        src: SimOperand,
    },
    /// Set predicate if equal.
    SetpEq {
        /// Destination predicate register.
        dst: u32,
        /// Left operand.
        a: SimOperand,
        /// Right operand.
        b: SimOperand,
    },
    /// Set predicate if not equal.
    SetpNe {
        /// Destination predicate register.
        dst: u32,
        /// Left operand.
        a: SimOperand,
        /// Right operand.
        b: SimOperand,
    },
    /// Jump to instruction offset.
    Bra(u32),
    /// No-op (label definitions compile to this).
    Nop,
}

/// One instruction slot: the op plus an optional predicate guard.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimInstr {
    /// The operation.
    pub op: SimOp,
    /// Guard: `(pred register, expected truth)`.
    pub guard: Option<(u32, bool)>,
}

/// A location's static properties.
#[derive(Clone, Debug)]
pub struct LocInfo {
    /// Source-level name.
    pub name: Loc,
    /// Region.
    pub region: Region,
    /// Initial value.
    pub init: i64,
}

/// What to record after a run.
#[derive(Clone, Debug)]
pub enum ObsTarget {
    /// `(thread, register index)`.
    Reg(usize, u32),
    /// Location id.
    Mem(u32),
}

/// A compiled litmus test.
#[derive(Clone, Debug)]
pub struct SimProgram {
    /// Test name.
    pub name: String,
    /// Per-thread code.
    pub threads: Vec<Vec<SimInstr>>,
    /// Per-thread register initial values.
    pub reg_init: Vec<Vec<SimValue>>,
    /// Location table.
    pub locs: Vec<LocInfo>,
    /// CTA index per thread.
    pub thread_cta: Vec<usize>,
    /// Number of CTAs in the scope tree.
    pub num_ctas: usize,
    /// Observed expressions with resolved targets, in condition order.
    pub observed: Vec<(FinalExpr, ObsTarget)>,
    /// `true` when the test's threads span multiple CTAs (controls the
    /// cta-fence leak sampling).
    pub spans_ctas: bool,
}

/// Compilation failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// The condition observes a register never used by its thread.
    UnknownObservedReg(usize, String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownObservedReg(t, r) => {
                write!(f, "final condition observes unused register {t}:{r}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl SimProgram {
    /// Compiles a validated litmus test.
    ///
    /// # Errors
    ///
    /// Fails if the final condition observes a register its thread never
    /// mentions (the value would be meaningless).
    pub fn compile(test: &LitmusTest) -> Result<SimProgram, CompileError> {
        let mut loc_ids: BTreeMap<Loc, u32> = BTreeMap::new();
        let mut locs: Vec<LocInfo> = Vec::new();
        for (loc, mi) in test.memory().iter() {
            loc_ids.insert(loc.clone(), locs.len() as u32);
            locs.push(LocInfo {
                name: loc.clone(),
                region: mi.region,
                init: mi.init,
            });
        }

        let mut threads = Vec::new();
        let mut reg_init = Vec::new();
        let mut reg_maps: Vec<BTreeMap<String, u32>> = Vec::new();
        for (tid, code) in test.threads().iter().enumerate() {
            let mut regs: BTreeMap<String, u32> = BTreeMap::new();
            let mut inits: Vec<SimValue> = Vec::new();
            let reg_id =
                |name: &str, regs: &mut BTreeMap<String, u32>, inits: &mut Vec<SimValue>| -> u32 {
                    if let Some(&id) = regs.get(name) {
                        return id;
                    }
                    let id = inits.len() as u32;
                    regs.insert(name.to_owned(), id);
                    let v = test.reg_init_value(tid, &weakgpu_litmus::Reg::new(name));
                    inits.push(match v {
                        Value::Int(n) => SimValue::Int(n),
                        Value::Ptr { loc, .. } => {
                            SimValue::Ptr(*loc_ids.get(&loc).expect("validated pointer target"))
                        }
                    });
                    id
                };

            // Label offsets (on the original instruction indexing, which we
            // preserve one-to-one with Nop for label defs).
            let mut label_off: BTreeMap<&Label, u32> = BTreeMap::new();
            for (i, instr) in code.iter().enumerate() {
                if let Instr::LabelDef(l) = instr {
                    label_off.insert(l, i as u32);
                }
            }

            let mut compiled = Vec::with_capacity(code.len());
            for instr in code {
                compiled.push(compile_instr(
                    instr,
                    &mut |n| reg_id(n, &mut regs, &mut inits),
                    &loc_ids,
                    &label_off,
                ));
            }
            threads.push(compiled);
            reg_init.push(inits);
            reg_maps.push(regs);
        }

        let thread_cta: Vec<usize> = (0..test.num_threads())
            .map(|t| test.scope_tree().placement(t).cta)
            .collect();
        let num_ctas = test.scope_tree().num_ctas();

        let mut observed = Vec::new();
        for expr in test.observed() {
            let target = match &expr {
                FinalExpr::Reg(t, r) => {
                    let id = reg_maps
                        .get(*t)
                        .and_then(|m| m.get(r.as_str()))
                        .copied()
                        .ok_or_else(|| {
                            CompileError::UnknownObservedReg(*t, r.as_str().to_owned())
                        })?;
                    ObsTarget::Reg(*t, id)
                }
                FinalExpr::Mem(l) => {
                    ObsTarget::Mem(*loc_ids.get(l).expect("condition locations validated"))
                }
            };
            observed.push((expr, target));
        }

        Ok(SimProgram {
            name: test.name().to_owned(),
            threads,
            reg_init,
            locs,
            spans_ctas: num_ctas > 1,
            thread_cta,
            num_ctas,
            observed,
        })
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }
}

fn compile_operand(
    op: &Operand,
    reg: &mut dyn FnMut(&str) -> u32,
    locs: &BTreeMap<Loc, u32>,
) -> SimOperand {
    match op {
        Operand::Reg(r) => SimOperand::Reg(reg(r.as_str())),
        Operand::Imm(n) => SimOperand::Imm(*n),
        Operand::Sym(l) => SimOperand::Sym(*locs.get(l).expect("validated location")),
    }
}

fn compile_instr(
    instr: &Instr,
    reg: &mut dyn FnMut(&str) -> u32,
    locs: &BTreeMap<Loc, u32>,
    labels: &BTreeMap<&Label, u32>,
) -> SimInstr {
    match instr {
        Instr::Guard {
            pred,
            expect,
            inner,
        } => {
            let mut compiled = compile_instr(inner, reg, locs, labels);
            compiled.guard = Some((reg(pred.as_str()), *expect));
            compiled
        }
        other => SimInstr {
            guard: None,
            op: compile_op(other, reg, locs, labels),
        },
    }
}

fn compile_op(
    instr: &Instr,
    reg: &mut dyn FnMut(&str) -> u32,
    locs: &BTreeMap<Loc, u32>,
    labels: &BTreeMap<&Label, u32>,
) -> SimOp {
    let operand = |o: &Operand, reg: &mut dyn FnMut(&str) -> u32| compile_operand(o, reg, locs);
    match instr {
        Instr::Ld {
            dst,
            addr,
            cache,
            volatile,
        } => SimOp::Ld {
            dst: reg(dst.as_str()),
            addr: operand(addr, reg),
            cache: *cache,
            volatile: *volatile,
        },
        Instr::St {
            addr,
            src,
            volatile,
            ..
        } => SimOp::St {
            addr: operand(addr, reg),
            src: operand(src, reg),
            volatile: *volatile,
        },
        Instr::Cas {
            dst,
            addr,
            expected,
            desired,
        } => SimOp::Cas {
            dst: reg(dst.as_str()),
            addr: operand(addr, reg),
            expected: operand(expected, reg),
            desired: operand(desired, reg),
        },
        Instr::Exch { dst, addr, src } => SimOp::Exch {
            dst: reg(dst.as_str()),
            addr: operand(addr, reg),
            src: operand(src, reg),
        },
        Instr::Inc { dst, addr } => SimOp::Inc {
            dst: reg(dst.as_str()),
            addr: operand(addr, reg),
        },
        Instr::Membar { scope } => SimOp::Membar(*scope),
        Instr::Mov { dst, src } => SimOp::Mov {
            dst: reg(dst.as_str()),
            src: operand(src, reg),
        },
        Instr::Add { dst, a, b } => SimOp::Add {
            dst: reg(dst.as_str()),
            a: operand(a, reg),
            b: operand(b, reg),
        },
        Instr::And { dst, a, b } => SimOp::And {
            dst: reg(dst.as_str()),
            a: operand(a, reg),
            b: operand(b, reg),
        },
        Instr::Xor { dst, a, b } => SimOp::Xor {
            dst: reg(dst.as_str()),
            a: operand(a, reg),
            b: operand(b, reg),
        },
        Instr::Cvt { dst, src } => SimOp::Cvt {
            dst: reg(dst.as_str()),
            src: operand(src, reg),
        },
        Instr::SetpEq { dst, a, b } => SimOp::SetpEq {
            dst: reg(dst.as_str()),
            a: operand(a, reg),
            b: operand(b, reg),
        },
        Instr::SetpNe { dst, a, b } => SimOp::SetpNe {
            dst: reg(dst.as_str()),
            a: operand(a, reg),
            b: operand(b, reg),
        },
        Instr::Bra { target } => SimOp::Bra(*labels.get(target).expect("validated label")),
        Instr::LabelDef(_) => SimOp::Nop,
        Instr::Guard { .. } => unreachable!("guards handled by compile_instr"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_litmus::corpus;

    #[test]
    fn compiles_corr() {
        let p = SimProgram::compile(&corpus::corr()).unwrap();
        assert_eq!(p.num_threads(), 2);
        assert_eq!(p.locs.len(), 1);
        assert_eq!(p.locs[0].name.as_str(), "x");
        assert!(!p.spans_ctas); // intra-CTA
        assert_eq!(p.observed.len(), 2);
        // T1 has two loads into distinct registers.
        assert_eq!(p.threads[1].len(), 2);
        assert!(matches!(p.threads[1][0].op, SimOp::Ld { .. }));
    }

    #[test]
    fn compiles_guards_and_labels() {
        let p = SimProgram::compile(&corpus::cas_sl(true)).unwrap();
        // T1: cas, setp, @p membar, @p ld.
        let t1 = &p.threads[1];
        assert_eq!(t1.len(), 4);
        assert!(t1[2].guard.is_some());
        assert!(t1[3].guard.is_some());
        assert!(matches!(t1[0].op, SimOp::Cas { .. }));
        assert!(p.spans_ctas);
    }

    #[test]
    fn pointer_reg_init_resolved() {
        use weakgpu_litmus::ThreadScope;
        let t = corpus::mp_dep(ThreadScope::InterCta, weakgpu_litmus::FenceScope::Gl);
        let p = SimProgram::compile(&t).unwrap();
        // T1's r4 starts as a pointer to x.
        let has_ptr = p.reg_init[1].iter().any(|v| matches!(v, SimValue::Ptr(_)));
        assert!(has_ptr);
    }

    #[test]
    fn whole_corpus_compiles() {
        for t in corpus::all() {
            let p = SimProgram::compile(&t).unwrap_or_else(|e| panic!("{}: {e}", t.name()));
            assert_eq!(p.num_threads(), t.num_threads());
        }
    }

    #[test]
    fn shared_region_recorded() {
        let p = SimProgram::compile(&corpus::mp_volatile()).unwrap();
        assert!(p.locs.iter().all(|l| l.region == Region::Shared));
    }
}
