//! The operational GPU machine: issues instructions in program order and
//! performs pending memory operations — possibly out of order, within the
//! chip's sanctioned reordering classes — against an L2 point of coherence
//! and per-SM L1 lines.
//!
//! # Soundness invariants (w.r.t. the paper's axiomatic model)
//!
//! * No operation performs before an operand it depends on is available
//!   (issue stalls on pending registers) — preserves `no-thin-air`.
//! * Same-location write→write, read→write and write→read pairs never
//!   reorder (write→read bypasses forward the pending value) — preserves
//!   SC-per-location minus the load-load hazard.
//! * A non-leaked fence is an ordering barrier for the whole window; only
//!   cta-scope fences on cross-CTA tests may leak — exactly the relaxation
//!   `rmo-cta` sanctions.
//! * Atomics read-modify-write the point of coherence in one step.
//!
//! `.ca` loads may additionally return stale per-SM L1 values — behaviour
//! the paper's model deliberately leaves out of scope (Sec. 5.5), matching
//! the fence-immune `mp-L1`/`coRR-L2-L1` results of Figs. 3 and 4.

use std::collections::VecDeque;
use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use weakgpu_litmus::{CacheOp, FenceScope, LitmusTest, Outcome, Region};

use crate::chip::{Chip, Incantations, RunWeights};
use crate::program::{CompileError, ObsTarget, SimInstr, SimOp, SimOperand, SimProgram, SimValue};

/// Maximum scheduler steps per run, against runaway spin loops.
const MAX_STEPS: usize = 200_000;

/// Maximum pending operations per thread window.
const WINDOW: usize = 8;

/// A run-time failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunError {
    /// The run exceeded the step budget (livelocked spin loop).
    StepLimit,
    /// An address operand did not hold a pointer.
    BadAddress {
        /// Thread id.
        tid: usize,
        /// Program counter.
        pc: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::StepLimit => write!(f, "run exceeded {MAX_STEPS} scheduler steps"),
            RunError::BadAddress { tid, pc } => {
                write!(f, "thread {tid} pc {pc}: address operand is not a pointer")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// A pending (issued, not yet performed) memory operation.
#[derive(Clone, Copy, Debug)]
enum Pending {
    Store { loc: u32, value: i64 },
    Load { loc: u32, dst: u32, cache: CacheOp },
    Rmw { loc: u32, dst: u32, rmw: RmwOp },
    Fence { scope: FenceScope, leaked: bool },
}

#[derive(Clone, Copy, Debug)]
enum RmwOp {
    Cas { expected: i64, desired: i64 },
    Exch(i64),
    Inc,
}

impl Pending {
    fn loc(&self) -> Option<u32> {
        match self {
            Pending::Store { loc, .. } | Pending::Load { loc, .. } | Pending::Rmw { loc, .. } => {
                Some(*loc)
            }
            Pending::Fence { .. } => None,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct L1Line {
    value: i64,
    stale: bool,
    /// Kept by a `.cg` load that should have evicted it: the next `.ca`
    /// load reads it even though it is stale.
    sticky: bool,
}

/// One window slot: the pending op plus a lingering delay. When a younger
/// op bypasses older ones, the skipped ops are delayed for several of the
/// thread's subsequent perform attempts, holding the reordering window
/// open long enough for other threads to observe it (as real store
/// buffers and in-flight queues do).
#[derive(Clone, Copy, Debug)]
struct Slot {
    op: Pending,
    delay: u8,
}

#[derive(Clone, Debug)]
struct ThreadCtx {
    pc: usize,
    regs: Vec<Option<SimValue>>,
    queue: VecDeque<Slot>,
}

impl ThreadCtx {
    fn done(&self, code_len: usize) -> bool {
        self.pc >= code_len && self.queue.is_empty()
    }
}

/// Reusable per-worker run state: every buffer a run needs, allocated once
/// and reset in place, so batched runs ([`Simulator::run_batch`]) pay no
/// per-iteration allocation. Obtain one from [`Simulator::new_state`]; a
/// state is only valid for the simulator that created it.
#[derive(Clone, Debug)]
pub struct MachineState {
    /// Location count — the stride of the flattened `shared`/`l1` planes.
    nlocs: usize,
    /// SM hosting each CTA this run.
    sm_of_cta: Vec<usize>,
    /// The L2 point of coherence, indexed by location.
    l2: Vec<i64>,
    /// Per-CTA shared memory, flattened `cta * nlocs + loc`.
    shared: Vec<i64>,
    /// Per-SM L1 lines, flattened `sm * nlocs + loc`.
    l1: Vec<Option<L1Line>>,
    /// Per-thread execution contexts.
    threads: Vec<ThreadCtx>,
    /// Scheduler scratch: indices of unfinished threads.
    active: Vec<usize>,
    /// Observed values of the last completed run, in the compiled
    /// program's `observed` order.
    obs: Vec<i64>,
}

impl MachineState {
    /// The observed values of the last completed run, in the order of the
    /// program's final-condition expressions. Convert to an [`Outcome`]
    /// with [`Simulator::outcome_from_obs`].
    pub fn observed(&self) -> &[i64] {
        &self.obs
    }
}

/// An indexed outcome collector: counts distinct observation vectors
/// (`MachineState::observed`) without materialising an [`Outcome`] — and
/// its per-expression `FinalExpr` clones — per iteration. Convert each
/// distinct key once at the end via [`Simulator::outcome_from_obs`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ObsCounts {
    counts: std::collections::BTreeMap<Vec<i64>, u64>,
}

impl ObsCounts {
    /// An empty collector.
    pub fn new() -> Self {
        ObsCounts::default()
    }

    /// Records one observation vector. Allocates only on the first
    /// occurrence of a distinct vector.
    pub fn record(&mut self, obs: &[i64]) {
        if let Some(n) = self.counts.get_mut(obs) {
            *n += 1;
        } else {
            self.counts.insert(obs.to_vec(), 1);
        }
    }

    /// Iterates `(observation vector, count)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&[i64], u64)> {
        self.counts.iter().map(|(k, n)| (k.as_slice(), *n))
    }

    /// Total recorded runs.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct observation vectors.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Drops all recorded counts, keeping the map's allocation strategy.
    pub fn clear(&mut self) {
        self.counts.clear();
    }
}

/// A compiled litmus test bound to a chip, ready to run.
#[derive(Clone, Debug)]
pub struct Simulator {
    program: SimProgram,
    chip: Chip,
    /// Owning CTA of each location's shared-memory instance (meaningful
    /// for `Region::Shared` locations only), precomputed at compile time.
    shared_owner: Vec<usize>,
}

impl Simulator {
    /// Compiles `test` for `chip`.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`]s from [`SimProgram::compile`].
    pub fn compile(test: &LitmusTest, chip: Chip) -> Result<Self, CompileError> {
        let program = SimProgram::compile(test)?;
        let shared_owner = (0..program.locs.len() as u32)
            .map(|l| shared_owner_cta(&program, l))
            .collect();
        Ok(Simulator {
            program,
            chip,
            shared_owner,
        })
    }

    /// The compiled program.
    pub fn program(&self) -> &SimProgram {
        &self.program
    }

    /// The chip this simulator models.
    pub fn chip(&self) -> Chip {
        self.chip
    }

    /// Runs the test once under the given incantations.
    ///
    /// # Errors
    ///
    /// See [`RunError`].
    pub fn run_once(&self, inc: &Incantations, rng: &mut SmallRng) -> Result<Outcome, RunError> {
        let weights = self.chip.profile().weights(inc);
        self.run_once_with_weights(&weights, inc.thread_rand, rng)
    }

    /// Runs the test once with explicit weights (used by the harness,
    /// which resolves weights once per batch).
    ///
    /// Allocates a fresh [`MachineState`] per call; hot loops should hold
    /// a state and use [`Simulator::run_batch`] (or
    /// [`Simulator::run_once_into`]) instead.
    ///
    /// # Errors
    ///
    /// See [`RunError`].
    pub fn run_once_with_weights(
        &self,
        w: &RunWeights,
        thread_rand: bool,
        rng: &mut SmallRng,
    ) -> Result<Outcome, RunError> {
        let mut state = self.new_state();
        self.run_once_into(w, thread_rand, rng, &mut state)?;
        Ok(self.outcome_from_obs(state.observed()))
    }

    /// A reusable run state sized for this simulator's program and chip.
    pub fn new_state(&self) -> MachineState {
        let p = &self.program;
        let nlocs = p.locs.len();
        let num_sms = self.chip.profile().num_sms;
        MachineState {
            nlocs,
            sm_of_cta: Vec::with_capacity(p.num_ctas),
            l2: Vec::with_capacity(nlocs),
            shared: Vec::with_capacity(p.num_ctas * nlocs),
            l1: Vec::with_capacity(num_sms * nlocs),
            threads: p
                .reg_init
                .iter()
                .map(|inits| ThreadCtx {
                    pc: 0,
                    regs: inits.iter().map(|v| Some(*v)).collect(),
                    queue: VecDeque::with_capacity(WINDOW),
                })
                .collect(),
            active: Vec::with_capacity(p.threads.len()),
            obs: Vec::with_capacity(p.observed.len()),
        }
    }

    /// Resets `st` to a fresh run: SM placement, memory images, L1
    /// preload and thread contexts. Consumes the same RNG draws, in the
    /// same order, as the historical allocate-per-run path.
    fn reset(&self, w: &RunWeights, thread_rand: bool, rng: &mut SmallRng, st: &mut MachineState) {
        let p = &self.program;
        let profile = self.chip.profile();
        let nlocs = st.nlocs;

        // SM placement: one SM per CTA by default; thread randomisation
        // scatters CTAs over the chip (they may then collide on an SM,
        // sharing an L1 — which suppresses stale-line effects, as on
        // hardware).
        st.sm_of_cta.clear();
        st.sm_of_cta.extend((0..p.num_ctas).map(|c| {
            if thread_rand {
                rng.random_range(0..profile.num_sms)
            } else {
                c % profile.num_sms
            }
        }));

        // Memory.
        st.l2.clear();
        st.l2.extend(p.locs.iter().map(|l| l.init));
        st.shared.clear();
        for _ in 0..p.num_ctas {
            st.shared.extend(p.locs.iter().map(|l| l.init));
        }
        st.l1.clear();
        st.l1.resize(profile.num_sms * nlocs, None);
        if w.l1_preload > 0.0 {
            for sm in st.sm_of_cta.iter().copied() {
                for (i, loc) in p.locs.iter().enumerate() {
                    if loc.region == Region::Global && rng.random_bool(w.l1_preload) {
                        st.l1[sm * nlocs + i] = Some(L1Line {
                            value: loc.init,
                            stale: false,
                            sticky: false,
                        });
                    }
                }
            }
        }

        for (ctx, inits) in st.threads.iter_mut().zip(&p.reg_init) {
            ctx.pc = 0;
            ctx.queue.clear();
            ctx.regs.clear();
            ctx.regs.extend(inits.iter().map(|v| Some(*v)));
        }
    }

    /// Runs the test once into a reusable state, leaving the observed
    /// values in [`MachineState::observed`].
    ///
    /// # Errors
    ///
    /// See [`RunError`].
    pub fn run_once_into(
        &self,
        w: &RunWeights,
        thread_rand: bool,
        rng: &mut SmallRng,
        st: &mut MachineState,
    ) -> Result<(), RunError> {
        let p = &self.program;
        self.reset(w, thread_rand, rng, st);

        let mut steps = 0usize;
        loop {
            st.active.clear();
            for t in 0..st.threads.len() {
                if !st.threads[t].done(p.threads[t].len()) {
                    st.active.push(t);
                }
            }
            if st.active.is_empty() {
                break;
            }
            steps += 1;
            if steps > MAX_STEPS {
                return Err(RunError::StepLimit);
            }
            let t = st.active[rng.random_range(0..st.active.len())];
            let (can_issue, stalled) = self.issue_status(t, &st.threads[t]);
            let can_perform = !st.threads[t].queue.is_empty();
            let do_issue = match (can_issue, can_perform) {
                // Favour issuing: real front-ends run ahead of the memory
                // system, which is what fills the window with reorderable
                // work.
                (true, true) => rng.random_bool(0.8),
                (true, false) => true,
                (false, true) => false,
                (false, false) => {
                    debug_assert!(!stalled, "stalled thread with empty queue");
                    continue;
                }
            };
            if do_issue {
                self.issue(t, &mut st.threads, w, rng)?;
            } else {
                self.perform(t, st, w, rng);
            }
        }

        // Collect the observed values.
        st.obs.clear();
        for (_, target) in &p.observed {
            let v = match target {
                ObsTarget::Reg(t, r) => st.threads[*t].regs[*r as usize]
                    .expect("all ops performed at termination")
                    .as_int(),
                ObsTarget::Mem(l) => match p.locs[*l as usize].region {
                    Region::Global => st.l2[*l as usize],
                    Region::Shared => {
                        let cta = self.shared_owner[*l as usize];
                        st.shared[cta * st.nlocs + *l as usize]
                    }
                },
            };
            st.obs.push(v);
        }
        Ok(())
    }

    /// Runs `n` iterations through a reusable state, recording each
    /// observation vector into `counts`. This is the amortised hot path:
    /// no per-iteration allocation beyond first-occurrence outcome keys.
    ///
    /// # Errors
    ///
    /// See [`RunError`]. Iterations completed before the error remain
    /// recorded in `counts`.
    pub fn run_batch(
        &self,
        n: usize,
        w: &RunWeights,
        thread_rand: bool,
        rng: &mut SmallRng,
        st: &mut MachineState,
        counts: &mut ObsCounts,
    ) -> Result<(), RunError> {
        for _ in 0..n {
            self.run_once_into(w, thread_rand, rng, st)?;
            counts.record(&st.obs);
        }
        Ok(())
    }

    /// Materialises an [`Outcome`] from an observation vector produced by
    /// this simulator ([`MachineState::observed`] / [`ObsCounts`] keys).
    pub fn outcome_from_obs(&self, obs: &[i64]) -> Outcome {
        debug_assert_eq!(obs.len(), self.program.observed.len());
        let mut outcome = Outcome::new();
        for ((expr, _), v) in self.program.observed.iter().zip(obs) {
            outcome.set(expr.clone(), *v);
        }
        outcome
    }

    /// `(can_issue, stalled_on_operand)` for the thread's next instruction.
    fn issue_status(&self, t: usize, ctx: &ThreadCtx) -> (bool, bool) {
        let code = &self.program.threads[t];
        if ctx.pc >= code.len() {
            return (false, false);
        }
        if ctx.queue.len() >= WINDOW {
            return (false, true);
        }
        let instr = &code[ctx.pc];
        let ready = self.operands_ready(instr, ctx);
        (ready, !ready)
    }

    fn operands_ready(&self, instr: &SimInstr, ctx: &ThreadCtx) -> bool {
        let reg_ready = |r: u32| ctx.regs[r as usize].is_some();
        let op_ready = |o: SimOperand| match o {
            SimOperand::Reg(r) => reg_ready(r),
            SimOperand::Imm(_) | SimOperand::Sym(_) => true,
        };
        if let Some((p, _)) = instr.guard {
            if !reg_ready(p) {
                return false;
            }
        }
        match instr.op {
            SimOp::Ld { addr, .. } | SimOp::Inc { addr, .. } => op_ready(addr),
            SimOp::St { addr, src, .. } => op_ready(addr) && op_ready(src),
            SimOp::Cas {
                addr,
                expected,
                desired,
                ..
            } => op_ready(addr) && op_ready(expected) && op_ready(desired),
            SimOp::Exch { addr, src, .. } => op_ready(addr) && op_ready(src),
            SimOp::Mov { src, .. } | SimOp::Cvt { src, .. } => op_ready(src),
            SimOp::Add { a, b, .. }
            | SimOp::And { a, b, .. }
            | SimOp::Xor { a, b, .. }
            | SimOp::SetpEq { a, b, .. }
            | SimOp::SetpNe { a, b, .. } => op_ready(a) && op_ready(b),
            SimOp::Membar(_) | SimOp::Bra(_) | SimOp::Nop => true,
        }
    }

    fn eval(&self, o: SimOperand, ctx: &ThreadCtx) -> SimValue {
        match o {
            SimOperand::Reg(r) => ctx.regs[r as usize].expect("checked ready"),
            SimOperand::Imm(n) => SimValue::Int(n),
            SimOperand::Sym(l) => SimValue::Ptr(l),
        }
    }

    fn eval_int(&self, o: SimOperand, ctx: &ThreadCtx) -> i64 {
        self.eval(o, ctx).as_int()
    }

    fn resolve_loc(&self, o: SimOperand, ctx: &ThreadCtx, tid: usize) -> Result<u32, RunError> {
        match self.eval(o, ctx) {
            SimValue::Ptr(l) => Ok(l),
            SimValue::Int(_) => Err(RunError::BadAddress { tid, pc: ctx.pc }),
        }
    }

    fn issue(
        &self,
        t: usize,
        threads: &mut [ThreadCtx],
        w: &RunWeights,
        rng: &mut SmallRng,
    ) -> Result<(), RunError> {
        let instr = self.program.threads[t][threads[t].pc];
        let ctx = &mut threads[t];

        // Guard check (operands already known ready).
        if let Some((p, expect)) = instr.guard {
            let truth = matches!(ctx.regs[p as usize], Some(SimValue::Int(n)) if n != 0);
            if truth != expect {
                ctx.pc += 1;
                return Ok(());
            }
        }

        match instr.op {
            SimOp::Nop => ctx.pc += 1,
            SimOp::Bra(target) => ctx.pc = target as usize,
            SimOp::Mov { dst, src } | SimOp::Cvt { dst, src } => {
                let v = self.eval(src, ctx);
                ctx.regs[dst as usize] = Some(v);
                ctx.pc += 1;
            }
            SimOp::Add { dst, a, b } => {
                let v = match (self.eval(a, ctx), self.eval(b, ctx)) {
                    (SimValue::Int(x), SimValue::Int(y)) => SimValue::Int(x.wrapping_add(y)),
                    // Pointer arithmetic: offsets other than 0 would leave
                    // the litmus location set; tests only add 0.
                    (SimValue::Ptr(l), SimValue::Int(_)) | (SimValue::Int(_), SimValue::Ptr(l)) => {
                        SimValue::Ptr(l)
                    }
                    (SimValue::Ptr(l), SimValue::Ptr(_)) => SimValue::Ptr(l),
                };
                ctx.regs[dst as usize] = Some(v);
                ctx.pc += 1;
            }
            SimOp::And { dst, a, b } => {
                let v = self.eval_int(a, ctx) & self.eval_int(b, ctx);
                ctx.regs[dst as usize] = Some(SimValue::Int(v));
                ctx.pc += 1;
            }
            SimOp::Xor { dst, a, b } => {
                let v = self.eval_int(a, ctx) ^ self.eval_int(b, ctx);
                ctx.regs[dst as usize] = Some(SimValue::Int(v));
                ctx.pc += 1;
            }
            SimOp::SetpEq { dst, a, b } => {
                let v = (self.eval(a, ctx) == self.eval(b, ctx)) as i64;
                ctx.regs[dst as usize] = Some(SimValue::Int(v));
                ctx.pc += 1;
            }
            SimOp::SetpNe { dst, a, b } => {
                let v = (self.eval(a, ctx) != self.eval(b, ctx)) as i64;
                ctx.regs[dst as usize] = Some(SimValue::Int(v));
                ctx.pc += 1;
            }
            SimOp::Membar(scope) => {
                let leaked = scope == FenceScope::Cta
                    && self.program.spans_ctas
                    && w.cta_fence_leak > 0.0
                    && rng.random_bool(w.cta_fence_leak);
                ctx.queue.push_back(Slot {
                    op: Pending::Fence { scope, leaked },
                    delay: 0,
                });
                ctx.pc += 1;
            }
            SimOp::Ld {
                dst, addr, cache, ..
            } => {
                let loc = self.resolve_loc(addr, ctx, t)?;
                ctx.queue.push_back(Slot {
                    op: Pending::Load { loc, dst, cache },
                    delay: 0,
                });
                ctx.regs[dst as usize] = None;
                ctx.pc += 1;
            }
            SimOp::St { addr, src, .. } => {
                let loc = self.resolve_loc(addr, ctx, t)?;
                let value = self.eval_int(src, ctx);
                ctx.queue.push_back(Slot {
                    op: Pending::Store { loc, value },
                    delay: 0,
                });
                ctx.pc += 1;
            }
            SimOp::Cas {
                dst,
                addr,
                expected,
                desired,
            } => {
                let loc = self.resolve_loc(addr, ctx, t)?;
                let rmw = RmwOp::Cas {
                    expected: self.eval_int(expected, ctx),
                    desired: self.eval_int(desired, ctx),
                };
                ctx.queue.push_back(Slot {
                    op: Pending::Rmw { loc, dst, rmw },
                    delay: 0,
                });
                ctx.regs[dst as usize] = None;
                ctx.pc += 1;
            }
            SimOp::Exch { dst, addr, src } => {
                let loc = self.resolve_loc(addr, ctx, t)?;
                let rmw = RmwOp::Exch(self.eval_int(src, ctx));
                ctx.queue.push_back(Slot {
                    op: Pending::Rmw { loc, dst, rmw },
                    delay: 0,
                });
                ctx.regs[dst as usize] = None;
                ctx.pc += 1;
            }
            SimOp::Inc { dst, addr } => {
                let loc = self.resolve_loc(addr, ctx, t)?;
                ctx.queue.push_back(Slot {
                    op: Pending::Rmw {
                        loc,
                        dst,
                        rmw: RmwOp::Inc,
                    },
                    delay: 0,
                });
                ctx.regs[dst as usize] = None;
                ctx.pc += 1;
            }
        }
        Ok(())
    }

    /// The probability that `later` may perform before `earlier`
    /// (`None` = never).
    fn bypass_prob(&self, earlier: &Pending, later: &Pending, w: &RunWeights) -> Option<f64> {
        if let Pending::Fence { leaked, .. } = earlier {
            return leaked.then_some(1.0);
        }
        if matches!(later, Pending::Fence { .. }) {
            return None; // fences retire in order
        }
        let (le, ll) = (
            earlier.loc().expect("accesses"),
            later.loc().expect("accesses"),
        );
        if le == ll {
            return match (earlier, later) {
                // Same-location load-load hazard (coRR). Mixed cache
                // operators reorder far more rarely (Fig. 4 vs Fig. 1).
                (Pending::Load { cache: c1, .. }, Pending::Load { cache: c2, .. }) => {
                    let region = self.program.locs[le as usize].region;
                    if region != Region::Global {
                        return None;
                    }
                    let p = if c1 == c2 { w.rr_same } else { w.rr_same_mixed };
                    (p > 0.0).then_some(p)
                }
                // A later load may run ahead of a pending same-location
                // store by forwarding its value (rfi) — coherence-safe.
                (Pending::Store { .. }, Pending::Load { .. }) => (w.wr > 0.0).then_some(w.wr),
                // coWW / coRW / anything through an RMW: never.
                _ => None,
            };
        }
        // Different locations.
        let region = self.program.locs[le as usize].region;
        let lregion = self.program.locs[ll as usize].region;
        let p = if region == Region::Shared || lregion == Region::Shared {
            w.shared
        } else {
            // Plain pairs take their class directly; pairs involving an
            // RMW take the class of the RMW's *ordering-relevant* aspect
            // (its read when it is the delayed op — the dlb-lb mechanism;
            // its write when it is the bypassing op — the cas-sl
            // mechanism), scaled by the chip's RMW factor. The hardware
            // data forces this asymmetry: on the HD6570, sb (plain
            // write→read) is unobservable while cas-sl is frequent.
            match (earlier, later) {
                (Pending::Store { .. }, Pending::Load { .. }) => w.wr,
                (Pending::Store { .. }, Pending::Store { .. }) => w.wwrr,
                (Pending::Load { .. }, Pending::Store { .. }) => w.rw,
                (Pending::Load { .. }, Pending::Load { .. }) => w.wwrr,
                (Pending::Store { .. }, Pending::Rmw { .. }) => w.wwrr * w.rmw_second_factor,
                (Pending::Rmw { .. }, Pending::Store { .. }) => w.rw * w.rmw_first_factor,
                (Pending::Rmw { .. }, Pending::Load { .. }) => w.wr * w.rmw_first_factor,
                // Acquire-side atomics do not run ahead of earlier loads:
                // no paper-observed behaviour requires it, and allowing it
                // would let `dlb-lb` fire from the stealing thread too,
                // far beyond the observed rates.
                (Pending::Load { .. }, Pending::Rmw { .. }) => 0.0,
                (Pending::Rmw { .. }, Pending::Rmw { .. }) => {
                    w.rw.min(w.wwrr) * w.rmw_first_factor.min(w.rmw_second_factor)
                }
                (Pending::Fence { .. }, _) | (_, Pending::Fence { .. }) => {
                    unreachable!("fences handled above")
                }
            }
        };
        (p > 0.0 && p.is_finite()).then_some(p.min(1.0))
    }

    fn perform(&self, t: usize, st: &mut MachineState, w: &RunWeights, rng: &mut SmallRng) {
        let nlocs = st.nlocs;
        let cta = self.program.thread_cta[t];
        let sm = st.sm_of_cta[cta];

        // Choose which queue entry performs.
        let idx = {
            let queue = &st.threads[t].queue;
            let mut chosen = 0;
            for j in 1..queue.len() {
                let mut p = 1.0;
                let mut ok = true;
                for i in 0..j {
                    match self.bypass_prob(&queue[i].op, &queue[j].op, w) {
                        None => {
                            ok = false;
                            break;
                        }
                        Some(q) => p *= q,
                    }
                }
                if ok && p > 0.0 && rng.random_bool(p.min(1.0)) {
                    chosen = j;
                    break;
                }
            }
            chosen
        };

        if idx > 0 {
            // Hold the bypassed ops back so the reordering window stays
            // open for other threads to observe.
            let extra = rng.random_range(24..=64);
            for i in 0..idx {
                let d = &mut st.threads[t].queue[i].delay;
                *d = (*d).max(extra);
            }
        } else if st.threads[t].queue[0].delay > 0 {
            // A delayed front op skips this perform attempt.
            st.threads[t].queue[0].delay -= 1;
            return;
        }

        // Forwarding source for a bypassing load: the newest earlier
        // pending same-location store.
        let forward: Option<i64> = match st.threads[t].queue[idx].op {
            Pending::Load { loc, .. } => {
                (0..idx)
                    .rev()
                    .find_map(|i| match st.threads[t].queue[i].op {
                        Pending::Store { loc: l, value } if l == loc => Some(value),
                        _ => None,
                    })
            }
            _ => None,
        };

        let op = st.threads[t]
            .queue
            .remove(idx)
            .expect("index chosen from queue")
            .op;

        match op {
            Pending::Fence { scope, leaked } => {
                if !leaked {
                    if let Some(min) = w.l1_invalidate_scope {
                        if scope.at_least(min) {
                            for line in st.l1[sm * nlocs..(sm + 1) * nlocs].iter_mut() {
                                *line = None;
                            }
                        }
                    }
                }
            }
            Pending::Store { loc, value } => {
                let li = loc as usize;
                match self.program.locs[li].region {
                    Region::Shared => st.shared[cta * nlocs + li] = value,
                    Region::Global => {
                        st.l2[li] = value;
                        // Fermi-style write-around: `.cg` stores bypass the
                        // L1, leaving any present line — including the
                        // issuing SM's own — stale.
                        for sml1 in st.l1.chunks_mut(nlocs) {
                            if let Some(line) = &mut sml1[li] {
                                line.stale = true;
                            }
                        }
                    }
                }
            }
            Pending::Load { loc, dst, cache } => {
                let li = loc as usize;
                let v = if let Some(fwd) = forward {
                    fwd
                } else {
                    match self.program.locs[li].region {
                        Region::Shared => st.shared[cta * nlocs + li],
                        Region::Global => match cache {
                            CacheOp::Cg => {
                                let v = st.l2[li];
                                // `.cg` evicts a matching L1 line — except
                                // with the keep-stale quirk, which leaves a
                                // sticky stale line behind (Fig. 4).
                                if let Some(line) = st.l1[sm * nlocs + li] {
                                    if line.stale
                                        && w.keep_stale_after_cg > 0.0
                                        && rng.random_bool(w.keep_stale_after_cg)
                                    {
                                        st.l1[sm * nlocs + li] = Some(L1Line {
                                            sticky: true,
                                            ..line
                                        });
                                    } else {
                                        st.l1[sm * nlocs + li] = None;
                                    }
                                }
                                v
                            }
                            CacheOp::Ca => match st.l1[sm * nlocs + li] {
                                Some(line) if line.sticky => line.value,
                                Some(line)
                                    if line.stale
                                        && w.l1_stale_read > 0.0
                                        && rng.random_bool(w.l1_stale_read) =>
                                {
                                    line.value
                                }
                                Some(line) => line.value,
                                None => {
                                    let v = st.l2[li];
                                    st.l1[sm * nlocs + li] = Some(L1Line {
                                        value: v,
                                        stale: false,
                                        sticky: false,
                                    });
                                    v
                                }
                            },
                        },
                    }
                };
                st.threads[t].regs[dst as usize] = Some(SimValue::Int(v));
            }
            Pending::Rmw { loc, dst, rmw } => {
                let li = loc as usize;
                let is_shared = self.program.locs[li].region == Region::Shared;
                let old = if is_shared {
                    st.shared[cta * nlocs + li]
                } else {
                    st.l2[li]
                };
                let new = match rmw {
                    RmwOp::Cas { expected, desired } => (old == expected).then_some(desired),
                    RmwOp::Exch(v) => Some(v),
                    RmwOp::Inc => Some(old.wrapping_add(1)),
                };
                if let Some(n) = new {
                    if is_shared {
                        st.shared[cta * nlocs + li] = n;
                    } else {
                        st.l2[li] = n;
                        // Atomics act at the L2; present L1 lines go stale.
                        for sml1 in st.l1.chunks_mut(nlocs) {
                            if let Some(line) = &mut sml1[li] {
                                line.stale = true;
                            }
                        }
                    }
                }
                st.threads[t].regs[dst as usize] = Some(SimValue::Int(old));
            }
        }
    }
}

/// The CTA whose shared-memory instance of `loc` the test uses
/// (validation guarantees a single CTA accesses each shared location).
fn shared_owner_cta(program: &SimProgram, loc: u32) -> usize {
    for (tid, code) in program.threads.iter().enumerate() {
        for instr in code {
            let addr = match instr.op {
                SimOp::Ld { addr, .. } | SimOp::St { addr, .. } => Some(addr),
                SimOp::Cas { addr, .. } | SimOp::Exch { addr, .. } | SimOp::Inc { addr, .. } => {
                    Some(addr)
                }
                _ => None,
            };
            if addr == Some(SimOperand::Sym(loc)) {
                return program.thread_cta[tid];
            }
        }
    }
    0
}

/// Convenience: run a test `iterations` times and count how often the
/// final condition is witnessed. The harness crate provides the full
/// histogram machinery; this is the minimal entry point.
///
/// # Errors
///
/// Propagates compile and run errors.
pub fn count_witnesses(
    test: &LitmusTest,
    chip: Chip,
    inc: &Incantations,
    iterations: usize,
    seed: u64,
) -> Result<usize, Box<dyn std::error::Error>> {
    let sim = Simulator::compile(test, chip)?;
    let weights = chip.profile().weights(inc);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut state = sim.new_state();
    let mut counts = ObsCounts::new();
    sim.run_batch(
        iterations,
        &weights,
        inc.thread_rand,
        &mut rng,
        &mut state,
        &mut counts,
    )?;
    let hits = counts
        .iter()
        .filter(|(obs, _)| test.cond().witnessed_by(&sim.outcome_from_obs(obs)))
        .map(|(_, n)| n as usize)
        .sum();
    Ok(hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_litmus::{corpus, ThreadScope};

    fn witnesses(
        test: &weakgpu_litmus::LitmusTest,
        chip: Chip,
        inc: &Incantations,
        n: usize,
    ) -> usize {
        count_witnesses(test, chip, inc, n, 0xfeed).unwrap()
    }

    #[test]
    fn sequential_weights_give_sc_outcomes_only() {
        // On GTX 280 (all-zero weights) the weak outcomes never appear.
        let inc = Incantations::all_on();
        for test in [
            corpus::corr(),
            corpus::mp(ThreadScope::InterCta, None),
            corpus::sb(ThreadScope::InterCta, None),
            corpus::lb(ThreadScope::InterCta, None),
            corpus::cas_sl(false),
            corpus::sl_future(false),
        ] {
            assert_eq!(
                witnesses(&test, Chip::Gtx280, &inc, 3000),
                0,
                "GTX 280 must stay strong on {}",
                test.name()
            );
        }
    }

    #[test]
    fn titan_exhibits_the_weak_idioms() {
        let inc = Incantations::best_inter_cta();
        let n = 20_000;
        for (test, min_hits) in [
            (corpus::mp(ThreadScope::InterCta, None), 100),
            (corpus::sb(ThreadScope::InterCta, None), 200),
            (corpus::lb(ThreadScope::InterCta, None), 50),
        ] {
            let hits = witnesses(&test, Chip::GtxTitan, &inc, n);
            assert!(
                hits >= min_hits,
                "{}: expected ≥{min_hits} weak outcomes in {n}, got {hits}",
                test.name()
            );
        }
        let corr_hits = witnesses(&corpus::corr(), Chip::GtxTitan, &Incantations::all_on(), n);
        assert!(corr_hits > 500, "coRR: got {corr_hits}");
    }

    #[test]
    fn gl_fences_suppress_weak_behaviour_on_titan() {
        use weakgpu_litmus::FenceScope;
        let inc = Incantations::best_inter_cta();
        let n = 20_000;
        for test in [
            corpus::mp(ThreadScope::InterCta, Some(FenceScope::Gl)),
            corpus::sb(ThreadScope::InterCta, Some(FenceScope::Gl)),
            corpus::lb(ThreadScope::InterCta, Some(FenceScope::Gl)),
            corpus::dlb_mp(true),
            corpus::dlb_lb(true),
            corpus::cas_sl(true),
            corpus::sl_future(true),
        ] {
            assert_eq!(
                witnesses(&test, Chip::GtxTitan, &inc, n),
                0,
                "gl fences must suppress {}",
                test.name()
            );
        }
    }

    #[test]
    fn cta_fences_leak_across_ctas_on_titan() {
        use weakgpu_litmus::FenceScope;
        let inc = Incantations::best_inter_cta();
        let n = 50_000;
        let inter = witnesses(
            &corpus::mp(ThreadScope::InterCta, Some(FenceScope::Cta)),
            Chip::GtxTitan,
            &inc,
            n,
        );
        assert!(
            inter > 10,
            "inter-CTA mp+membar.ctas must leak, got {inter}"
        );
        // Within a CTA the cta fence is solid.
        let intra = witnesses(
            &corpus::mp(ThreadScope::IntraCta, Some(FenceScope::Cta)),
            Chip::GtxTitan,
            &inc,
            n,
        );
        assert_eq!(intra, 0, "intra-CTA mp+membar.ctas must not leak");
    }

    #[test]
    fn nvidia_needs_incantations() {
        let n = 10_000;
        for test in [
            corpus::mp(ThreadScope::InterCta, None),
            corpus::sb(ThreadScope::InterCta, None),
            corpus::corr(),
        ] {
            assert_eq!(
                witnesses(&test, Chip::GtxTitan, &Incantations::none(), n),
                0,
                "{} must not be weak without incantations on Nvidia",
                test.name()
            );
        }
    }

    #[test]
    fn amd_weak_without_incantations() {
        let n = 10_000;
        let lb_hits = witnesses(
            &corpus::lb(ThreadScope::InterCta, None),
            Chip::RadeonHd7970,
            &Incantations::none(),
            n,
        );
        assert!(lb_hits > 500, "HD7970 lb with no incantations: {lb_hits}");
        // And no coRR on AMD ever.
        let corr_hits = witnesses(
            &corpus::corr(),
            Chip::RadeonHd7970,
            &Incantations::all_on(),
            n,
        );
        assert_eq!(corr_hits, 0);
    }

    #[test]
    fn tesc_mp_l1_survives_all_fences() {
        use weakgpu_litmus::FenceScope;
        let inc = Incantations::best_inter_cta();
        let n = 50_000;
        for fence in [FenceScope::Cta, FenceScope::Gl, FenceScope::Sys] {
            let hits = witnesses(&corpus::mp_l1(Some(fence)), Chip::TeslaC2075, &inc, n);
            assert!(
                hits > 0,
                "TesC mp-L1 must stay weak under membar{} (Fig. 3)",
                fence.suffix()
            );
        }
        // Whereas on the Titan, the gl fence suppresses mp-L1 entirely.
        let titan = witnesses(
            &corpus::mp_l1(Some(FenceScope::Gl)),
            Chip::GtxTitan,
            &inc,
            n,
        );
        assert_eq!(titan, 0);
    }

    #[test]
    fn corr_l2_l1_fence_immune_on_tesc() {
        use weakgpu_litmus::FenceScope;
        let inc = Incantations::all_on();
        let n = 50_000;
        let hits = witnesses(
            &corpus::corr_l2_l1(Some(FenceScope::Sys)),
            Chip::TeslaC2075,
            &inc,
            n,
        );
        assert!(hits > 0, "TesC coRR-L2-L1 must survive membar.sys (Fig. 4)");
        let gtx6 = witnesses(
            &corpus::corr_l2_l1(Some(FenceScope::Gl)),
            Chip::Gtx660,
            &inc,
            n,
        );
        assert_eq!(gtx6, 0, "GTX 660 coRR-L2-L1 is fence-suppressed");
    }

    #[test]
    fn volatile_does_not_restore_sc_on_fermi() {
        let hits = witnesses(
            &corpus::mp_volatile(),
            Chip::Gtx540m,
            &Incantations::all_on(),
            30_000,
        );
        assert!(hits > 100, "mp-volatile must be weak on Fermi: {hits}");
    }

    #[test]
    fn spin_lock_kernel_terminates() {
        use weakgpu_litmus::build::*;
        use weakgpu_litmus::{LitmusTest, Predicate};
        // A thread spinning on a mutex that another thread releases.
        let test = LitmusTest::builder("spin")
            .global("m", 1)
            .global("x", 0)
            .thread([st("x", 1), exch("r0", "m", 0)])
            .thread([
                label("SPIN"),
                cas("r1", "m", 0, 1),
                setp_ne("p", reg("r1"), imm(0)),
                bra("SPIN").guarded("p", true),
                ld("r3", "x"),
            ])
            .scope(ThreadScope::InterCta)
            .exists(Predicate::reg_eq(1, "r1", 0).and(Predicate::reg_eq(1, "r3", 1)))
            .build()
            .unwrap();
        let hits = witnesses(&test, Chip::Gtx280, &Incantations::none(), 500);
        // Strong chip: the lock always works and x is always seen.
        assert_eq!(hits, 500);
    }

    #[test]
    fn run_batch_matches_repeated_run_once() {
        // The amortised batch path (one reused MachineState) must be
        // observationally identical to repeated fresh-state runs under
        // the same RNG stream.
        let test = corpus::mp(ThreadScope::InterCta, None);
        let sim = Simulator::compile(&test, Chip::GtxTitan).unwrap();
        let inc = Incantations::best_inter_cta();
        let weights = Chip::GtxTitan.profile().weights(&inc);
        let n = 2_000;

        let mut batch_rng = SmallRng::seed_from_u64(0xabcd);
        let mut state = sim.new_state();
        let mut counts = ObsCounts::new();
        sim.run_batch(
            n,
            &weights,
            inc.thread_rand,
            &mut batch_rng,
            &mut state,
            &mut counts,
        )
        .unwrap();
        let mut batch: std::collections::BTreeMap<Outcome, u64> = Default::default();
        for (obs, c) in counts.iter() {
            *batch.entry(sim.outcome_from_obs(obs)).or_insert(0) += c;
        }

        let mut naive_rng = SmallRng::seed_from_u64(0xabcd);
        let mut naive: std::collections::BTreeMap<Outcome, u64> = Default::default();
        for _ in 0..n {
            let outcome = sim
                .run_once_with_weights(&weights, inc.thread_rand, &mut naive_rng)
                .unwrap();
            *naive.entry(outcome).or_insert(0) += 1;
        }

        assert_eq!(counts.total(), n as u64);
        assert_eq!(batch, naive);
        // Multiple distinct outcomes, so the comparison is non-trivial.
        assert!(counts.distinct() > 1);
    }

    #[test]
    fn outcome_from_obs_round_trips() {
        let test = corpus::sb(ThreadScope::InterCta, None);
        let sim = Simulator::compile(&test, Chip::GtxTitan).unwrap();
        let weights = Chip::GtxTitan.profile().weights(&Incantations::all_on());
        let mut rng = SmallRng::seed_from_u64(7);
        let mut state = sim.new_state();
        sim.run_once_into(&weights, true, &mut rng, &mut state)
            .unwrap();
        // The materialised outcome binds exactly the observed expressions,
        // each to the value the state recorded for it.
        let outcome = sim.outcome_from_obs(state.observed());
        assert_eq!(outcome.len(), state.observed().len());
        for ((expr, _), v) in sim.program().observed.iter().zip(state.observed()) {
            assert_eq!(outcome.get(expr), Some(*v));
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let test = corpus::mp(ThreadScope::InterCta, None);
        let a = witnesses(&test, Chip::GtxTitan, &Incantations::best_inter_cta(), 5000);
        let b = witnesses(&test, Chip::GtxTitan, &Incantations::best_inter_cta(), 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn atomics_are_atomic() {
        use weakgpu_litmus::build::*;
        use weakgpu_litmus::{LitmusTest, Predicate};
        // Two increments on the same counter: the final value must be 2 on
        // every chip (atomics RMW the point of coherence in one step).
        let test = LitmusTest::builder("inc2")
            .global("c", 0)
            .thread([inc("r0", "c")])
            .thread([inc("r0", "c")])
            .scope(ThreadScope::InterCta)
            .exists(Predicate::mem_eq("c", 2))
            .build()
            .unwrap();
        for chip in [Chip::GtxTitan, Chip::RadeonHd7970] {
            let hits = witnesses(&test, chip, &Incantations::all_on(), 2000);
            assert_eq!(hits, 2000, "lost increment on {chip}");
        }
    }
}
