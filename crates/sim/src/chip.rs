//! Chip profiles for the eight GPUs of the paper's Tab. 1, and the
//! incantation effect model of Tab. 6.
//!
//! Each profile carries per-mechanism base reordering probabilities,
//! calibrated so that running the paper's figures at the most effective
//! incantations lands in the same `obs/100k` decade as the paper reports
//! (exact counts are silicon-specific; shape is the reproduction target —
//! DESIGN.md §4).

use weakgpu_litmus::FenceScope;

/// GPU vendor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Vendor {
    /// Nvidia (tests written in PTX).
    Nvidia,
    /// AMD (tests written in OpenCL, compiled by the vendor compiler).
    Amd,
}

/// The four incantations of Sec. 4.3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Incantations {
    /// Sec. 4.3.1 — non-testing threads hammer scratch memory.
    pub memory_stress: bool,
    /// Sec. 4.3.2 — same-warp threads provoke shared-memory bank conflicts.
    pub bank_conflicts: bool,
    /// Sec. 4.3.3 — random ids for testing threads and random thread counts.
    pub thread_rand: bool,
    /// Sec. 4.3.4 — testing threads synchronise on a counter before the test.
    pub thread_sync: bool,
}

impl Incantations {
    /// No incantations (the paper's basic setup, which witnesses no weak
    /// behaviour on Nvidia).
    pub fn none() -> Self {
        Incantations::default()
    }

    /// All four enabled (Tab. 6 column 16) — the best column for
    /// intra-CTA tests on Nvidia.
    pub fn all_on() -> Self {
        Incantations {
            memory_stress: true,
            bank_conflicts: true,
            thread_sync: true,
            thread_rand: true,
        }
    }

    /// Memory stress + thread sync + thread randomisation (Tab. 6
    /// column 12) — the best column for inter-CTA tests on Nvidia.
    pub fn best_inter_cta() -> Self {
        Incantations {
            memory_stress: true,
            bank_conflicts: false,
            thread_sync: true,
            thread_rand: true,
        }
    }

    /// The Tab. 6 column index (1–16) of this combination: columns
    /// enumerate (memory stress, bank conflicts) in blocks of four, and
    /// (thread sync, thread rand) within each block.
    pub fn column(&self) -> usize {
        let block = (self.memory_stress as usize) * 2 + self.bank_conflicts as usize;
        let inner = (self.thread_sync as usize) * 2 + self.thread_rand as usize;
        block * 4 + inner + 1
    }

    /// All 16 combinations in Tab. 6 column order.
    pub fn all_combinations() -> Vec<Incantations> {
        let mut v = Vec::with_capacity(16);
        for ms in [false, true] {
            for gbc in [false, true] {
                for ts in [false, true] {
                    for tr in [false, true] {
                        v.push(Incantations {
                            memory_stress: ms,
                            bank_conflicts: gbc,
                            thread_sync: ts,
                            thread_rand: tr,
                        });
                    }
                }
            }
        }
        v
    }

    fn index(&self) -> usize {
        self.column() - 1
    }
}

impl std::fmt::Display for Incantations {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        if self.memory_stress {
            parts.push("stress");
        }
        if self.bank_conflicts {
            parts.push("gbc");
        }
        if self.thread_sync {
            parts.push("sync");
        }
        if self.thread_rand {
            parts.push("rand");
        }
        if parts.is_empty() {
            write!(f, "none")
        } else {
            write!(f, "{}", parts.join("+"))
        }
    }
}

/// Per-mechanism incantation multiplier tables, indexed by Tab. 6 column.
///
/// Values are the per-class normalised observation counts of the
/// corresponding Tab. 6 row (sb → `wr`, lb → `rw`, mp → `wwrr`, coRR →
/// `rr_same`), so that 1.0 corresponds to the class's most effective
/// column.
#[derive(Clone, Copy, Debug)]
pub struct IncantationTables {
    /// Later-read-bypasses-earlier-write (store buffering).
    pub wr: [f64; 16],
    /// Later-write-bypasses-earlier-read (load buffering).
    pub rw: [f64; 16],
    /// Write-write and read-read (different location) — message passing.
    pub wwrr: [f64; 16],
    /// Read-read, same location (`coRR`).
    pub rr_same: [f64; 16],
}

/// Tab. 6, GTX Titan rows, normalised per row.
const NVIDIA_TABLES: IncantationTables = IncantationTables {
    // sb row: 0 0 0 0 | 0 0 0 0 | 462 1403 3308 6673 | 3 50 88 749, /6673
    wr: [
        0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.069, 0.210, 0.496, 1.0, 0.0004, 0.0075, 0.0132,
        0.112,
    ],
    // lb row: 0 0 0 0 | 0 0 0 0 | 181 1067 1555 2247 | 4 37 83 486, /2247
    rw: [
        0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.081, 0.475, 0.692, 1.0, 0.0018, 0.0165, 0.0369,
        0.216,
    ],
    // mp row: 0 0 0 0 | 0 621 0 2921 | 315 1128 2372 4347 | 7 94 442 2888, /4347
    wwrr: [
        0.0, 0.0, 0.0, 0.0, 0.0, 0.143, 0.0, 0.672, 0.072, 0.259, 0.546, 1.0, 0.0016, 0.0216,
        0.102, 0.664,
    ],
    // coRR row: 0 0 0 0 | 0 1235 0 9774 | 161 118 847 362 | 632 3384 3993 9985, /9985
    rr_same: [
        0.0, 0.0, 0.0, 0.0, 0.0, 0.124, 0.0, 0.979, 0.016, 0.012, 0.085, 0.036, 0.063, 0.339,
        0.400, 1.0,
    ],
};

/// Tab. 6, Radeon HD 7970 rows, normalised per row. AMD chips exhibit weak
/// behaviour even with no incantations (column 1).
const AMD_TABLES: IncantationTables = IncantationTables {
    // sb row: 0 0 0 0 | 2 0 2 0 | 0 … 0 — vanishingly rare, GBC-gated.
    wr: [
        0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
    ],
    // lb row: 10959 8979 31895 29092 | 13510 12729 29779 26737 |
    //         5094 9360 37624 38664 | 5321 10054 32796 34196, /38664
    rw: [
        0.283, 0.232, 0.825, 0.752, 0.349, 0.329, 0.770, 0.691, 0.132, 0.242, 0.973, 1.0, 0.138,
        0.260, 0.848, 0.884,
    ],
    // mp row: 212 31 243 158 | 277 46 318 247 | 473 217 1289 563 |
    //         611 339 2542 1628, /2542
    wwrr: [
        0.083, 0.012, 0.096, 0.062, 0.109, 0.018, 0.125, 0.097, 0.186, 0.085, 0.507, 0.221, 0.240,
        0.133, 1.0, 0.640,
    ],
    // coRR row: all zero.
    rr_same: [0.0; 16],
};

/// Base (best-incantation) reordering probabilities and cache behaviour of
/// one chip.
#[derive(Clone, Copy, Debug)]
pub struct BaseWeights {
    /// P(later read performs before an earlier pending write), per
    /// opportunity — drives `sb`.
    pub wr: f64,
    /// P(later write performs before an earlier pending read) — drives
    /// `lb`.
    pub rw: f64,
    /// P(write-write or read-read bypass, different locations) — drives
    /// `mp`.
    pub wwrr: f64,
    /// P(same-location read-read bypass) — drives `coRR`.
    pub rr_same: f64,
    /// P(same-location read-read bypass when the two loads carry
    /// *different* cache operators) — drives the ordering component of
    /// `coRR-L2-L1` (Fig. 4), much rarer than plain `coRR` on Kepler.
    pub rr_same_mixed: f64,
    /// P(bypass) for shared-memory access pairs — drives `mp-volatile`.
    pub shared: f64,
    /// Multiplier when the *earlier* (delayed) op is an RMW — drives
    /// `dlb-lb` (the CAS's read delayed past a later store).
    pub rmw_first_factor: f64,
    /// Multiplier when the *later* (bypassing) op is an RMW — drives
    /// `cas-sl` (the releasing exchange overtaking the pending store).
    pub rmw_second_factor: f64,
    /// P(a cta-scope fence fails to order inter-CTA communication) —
    /// the Kepler `mp+membar.ctas` leak.
    pub cta_fence_leak: f64,
    /// P(an SM's L1 holds a (fresh) line for a test location at run start).
    pub l1_preload: f64,
    /// P(a `.ca` load hits a stale L1 line instead of refreshing).
    pub l1_stale_read: f64,
    /// P(a `.cg` load fails to evict a matching stale L1 line) — the
    /// `coRR-L2-L1` quirk (Fig. 4). A line kept this way is *sticky*: the
    /// next `.ca` load reads its stale value deterministically, modelling
    /// the observed fence-immune behaviour on Fermi.
    pub keep_stale_after_cg: f64,
    /// Weakest fence scope that invalidates the issuing SM's L1 lines;
    /// `None` models the Tesla C2075, where no fence restores `.ca`
    /// orderings (Fig. 3).
    pub l1_invalidate_scope: Option<FenceScope>,
}

impl BaseWeights {
    /// A fully strong chip (every probability zero, fences invalidate).
    pub const STRONG: BaseWeights = BaseWeights {
        wr: 0.0,
        rw: 0.0,
        wwrr: 0.0,
        rr_same: 0.0,
        rr_same_mixed: 0.0,
        shared: 0.0,
        rmw_first_factor: 0.0,
        rmw_second_factor: 0.0,
        cta_fence_leak: 0.0,
        l1_preload: 0.0,
        l1_stale_read: 0.0,
        keep_stale_after_cg: 0.0,
        l1_invalidate_scope: Some(FenceScope::Cta),
    };
}

/// A complete chip profile.
#[derive(Clone, Copy, Debug)]
pub struct ChipProfile {
    /// Marketing name, e.g. `"GTX Titan"`.
    pub name: &'static str,
    /// Short name used in the paper's tables, e.g. `"Titan"`.
    pub short: &'static str,
    /// Vendor.
    pub vendor: Vendor,
    /// Architecture, e.g. `"Kepler"`.
    pub arch: &'static str,
    /// Release year (Tab. 1).
    pub year: u16,
    /// Number of SMs (compute units on AMD).
    pub num_sms: usize,
    /// Threads per warp (32 Nvidia, 64 AMD).
    pub warp_size: usize,
    /// Base reordering probabilities.
    pub base: BaseWeights,
}

impl ChipProfile {
    /// The incantation multiplier tables for this vendor.
    pub fn tables(&self) -> &'static IncantationTables {
        match self.vendor {
            Vendor::Nvidia => &NVIDIA_TABLES,
            Vendor::Amd => &AMD_TABLES,
        }
    }

    /// Resolves the effective per-run weights for a given incantation
    /// combination.
    ///
    /// Reordering probabilities scale with the per-class Tab. 6 tables;
    /// cache-behaviour probabilities (`l1_*`, `keep_stale_after_cg`) scale
    /// with the memory-stress bit (stale lines need traffic to arise) and
    /// the structural parameters (`cta_fence_leak`, `atomic_factor`,
    /// `l1_invalidate_scope`) are incantation-independent.
    pub fn weights(&self, inc: &Incantations) -> RunWeights {
        let t = self.tables();
        let i = inc.index();
        // Stale L1 lines need memory traffic to arise; AMD profiles have
        // no L1 machinery, so the gate is a no-op there.
        let cache_mult = if self.vendor == Vendor::Amd || inc.memory_stress {
            1.0
        } else {
            0.0
        };
        RunWeights {
            wr: self.base.wr * t.wr[i],
            rw: self.base.rw * t.rw[i],
            wwrr: self.base.wwrr * t.wwrr[i],
            rr_same: self.base.rr_same * t.rr_same[i],
            rr_same_mixed: self.base.rr_same_mixed * t.rr_same[i],
            shared: self.base.shared * t.rr_same[i].max(0.3 * t.wwrr[i]),
            rmw_first_factor: self.base.rmw_first_factor,
            rmw_second_factor: self.base.rmw_second_factor,
            cta_fence_leak: self.base.cta_fence_leak,
            l1_preload: self.base.l1_preload * cache_mult,
            l1_stale_read: self.base.l1_stale_read,
            keep_stale_after_cg: self.base.keep_stale_after_cg * cache_mult,
            l1_invalidate_scope: self.base.l1_invalidate_scope,
        }
    }
}

/// The effective, incantation-scaled weights for one batch of runs.
/// Fields mirror [`BaseWeights`].
#[derive(Clone, Copy, Debug)]
pub struct RunWeights {
    /// See [`BaseWeights::wr`].
    pub wr: f64,
    /// See [`BaseWeights::rw`].
    pub rw: f64,
    /// See [`BaseWeights::wwrr`].
    pub wwrr: f64,
    /// See [`BaseWeights::rr_same`].
    pub rr_same: f64,
    /// See [`BaseWeights::rr_same_mixed`].
    pub rr_same_mixed: f64,
    /// See [`BaseWeights::shared`].
    pub shared: f64,
    /// See [`BaseWeights::rmw_first_factor`].
    pub rmw_first_factor: f64,
    /// See [`BaseWeights::rmw_second_factor`].
    pub rmw_second_factor: f64,
    /// See [`BaseWeights::cta_fence_leak`].
    pub cta_fence_leak: f64,
    /// See [`BaseWeights::l1_preload`].
    pub l1_preload: f64,
    /// See [`BaseWeights::l1_stale_read`].
    pub l1_stale_read: f64,
    /// See [`BaseWeights::keep_stale_after_cg`].
    pub keep_stale_after_cg: f64,
    /// See [`BaseWeights::l1_invalidate_scope`].
    pub l1_invalidate_scope: Option<FenceScope>,
}

impl RunWeights {
    /// All-zero weights: the simulator becomes sequentially consistent.
    pub fn sequential() -> Self {
        RunWeights {
            wr: 0.0,
            rw: 0.0,
            wwrr: 0.0,
            rr_same: 0.0,
            rr_same_mixed: 0.0,
            shared: 0.0,
            rmw_first_factor: 0.0,
            rmw_second_factor: 0.0,
            cta_fence_leak: 0.0,
            l1_preload: 0.0,
            l1_stale_read: 0.0,
            keep_stale_after_cg: 0.0,
            l1_invalidate_scope: Some(FenceScope::Cta),
        }
    }
}

/// The chips of the paper's Tab. 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Chip {
    /// Nvidia GTX 280 (Tesla, 2008) — the one chip where no weak behaviour
    /// was observed; omitted from the paper's result tables.
    Gtx280,
    /// Nvidia GTX 540m (Fermi, 2011) — "GTX5".
    Gtx540m,
    /// Nvidia Tesla C2075 (Fermi, 2011) — "TesC"; the fence-ineffective L1.
    TeslaC2075,
    /// Nvidia GTX 660 (Kepler, 2012) — "GTX6".
    Gtx660,
    /// Nvidia GTX Titan (Kepler, 2013) — "Titan".
    GtxTitan,
    /// Nvidia GTX 750 (Maxwell, 2014) — "GTX7"; almost fully strong.
    Gtx750,
    /// AMD Radeon HD 6570 (TeraScale 2, 2011) — "HD6570".
    RadeonHd6570,
    /// AMD Radeon HD 7970 (GCN 1.0, 2012) — "HD7970".
    RadeonHd7970,
}

impl Chip {
    /// All chips, in Tab. 1 order.
    pub const ALL: [Chip; 8] = [
        Chip::Gtx280,
        Chip::Gtx540m,
        Chip::TeslaC2075,
        Chip::Gtx660,
        Chip::GtxTitan,
        Chip::Gtx750,
        Chip::RadeonHd6570,
        Chip::RadeonHd7970,
    ];

    /// The chips appearing in the paper's result tables (all but the
    /// GTX 280).
    pub const TABLED: [Chip; 7] = [
        Chip::Gtx540m,
        Chip::TeslaC2075,
        Chip::Gtx660,
        Chip::GtxTitan,
        Chip::Gtx750,
        Chip::RadeonHd6570,
        Chip::RadeonHd7970,
    ];

    /// The Nvidia chips of the result tables.
    pub const NVIDIA_TABLED: [Chip; 5] = [
        Chip::Gtx540m,
        Chip::TeslaC2075,
        Chip::Gtx660,
        Chip::GtxTitan,
        Chip::Gtx750,
    ];

    /// This chip's profile.
    pub fn profile(self) -> &'static ChipProfile {
        match self {
            Chip::Gtx280 => &GTX280,
            Chip::Gtx540m => &GTX540M,
            Chip::TeslaC2075 => &TESLA_C2075,
            Chip::Gtx660 => &GTX660,
            Chip::GtxTitan => &GTX_TITAN,
            Chip::Gtx750 => &GTX750,
            Chip::RadeonHd6570 => &HD6570,
            Chip::RadeonHd7970 => &HD7970,
        }
    }

    /// Paper short name ("GTX5", "TesC", …).
    pub fn short(self) -> &'static str {
        self.profile().short
    }
}

impl std::fmt::Display for Chip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.profile().name)
    }
}

// Calibration notes: base probabilities are back-solved from the paper's
// obs/100k at the most effective incantations. `sb` needs both threads'
// read bypasses, so wr ≈ √(sb rate); `lb` needs one write bypass plus a
// favourable interleaving (≈ ×2); `mp` fires on either of two wwrr
// opportunities (≈ ×0.5); `coRR` needs the bypass plus the remote store
// landing inside the window (≈ ×2).

static GTX280: ChipProfile = ChipProfile {
    name: "GTX 280",
    short: "GTX280",
    vendor: Vendor::Nvidia,
    arch: "Tesla",
    year: 2008,
    num_sms: 30,
    warp_size: 32,
    base: BaseWeights::STRONG,
};

static GTX540M: ChipProfile = ChipProfile {
    name: "GTX 540m",
    short: "GTX5",
    vendor: Vendor::Nvidia,
    arch: "Fermi",
    year: 2011,
    num_sms: 2,
    warp_size: 32,
    base: BaseWeights {
        wr: 0.02,               // sb not reported; dlb-mp: 0 observed
        rw: 0.0,                // dlb-lb: 0 observed
        wwrr: 0.065,            // mp-L1 no-fence 4979
        rr_same: 0.50,          // coRR 11642
        rr_same_mixed: 0.022,   // coRR-L2-L1 no-fence 2556 minus sticky path
        shared: 0.085,          // mp-volatile 6301
        rmw_first_factor: 0.0,  // dlb-lb: 0 observed
        rmw_second_factor: 0.0, // cas-sl / sl-future: 0 observed
        cta_fence_leak: 0.0,    // mp-L1 membar.cta row: 0
        l1_preload: 0.35,
        l1_stale_read: 0.0,                        // mp-L1 fenced rows: 0
        keep_stale_after_cg: 0.09,                 // coRR-L2-L1 cta-fence row 1934
        l1_invalidate_scope: Some(FenceScope::Gl), // gl row: 0
    },
};

static TESLA_C2075: ChipProfile = ChipProfile {
    name: "Tesla C2075",
    short: "TesC",
    vendor: Vendor::Nvidia,
    arch: "Fermi",
    year: 2011,
    num_sms: 14,
    warp_size: 32,
    base: BaseWeights {
        wr: 0.03,                // sb not reported; dlb-mp: 4
        rw: 0.05,                // dlb-lb 750 with atomics
        wwrr: 0.14,              // mp-L1 no-fence 10581
        rr_same: 0.38,           // coRR 8879
        rr_same_mixed: 0.035,    // coRR-L2-L1 no-fence 2982
        shared: 0.066,           // mp-volatile 4977
        rmw_first_factor: 0.85,  // dlb-lb 750
        rmw_second_factor: 0.01, // cas-sl 47
        cta_fence_leak: 0.03,    // mp-L1 cta row 308 over no-fence 10581
        l1_preload: 0.35,
        l1_stale_read: 0.025,      // fenced mp-L1 rows 162–308
        keep_stale_after_cg: 0.07, // coRR-L2-L1 fenced rows ~1428–2180
        l1_invalidate_scope: None, // no fence restores .ca orderings
    },
};

static GTX660: ChipProfile = ChipProfile {
    name: "GTX 660",
    short: "GTX6",
    vendor: Vendor::Nvidia,
    arch: "Kepler",
    year: 2012,
    num_sms: 5,
    warp_size: 32,
    base: BaseWeights {
        wr: 0.10,                // dlb-mp 36
        rw: 0.03,                // dlb-lb 399
        wwrr: 0.048,             // mp-L1 no-fence 3635
        rr_same: 0.42,           // coRR 9599
        rr_same_mixed: 0.00001,  // coRR-L2-L1: 2
        shared: 0.036,           // mp-volatile 2753
        rmw_first_factor: 0.7,   // dlb-lb 399
        rmw_second_factor: 0.04, // cas-sl 43
        cta_fence_leak: 0.004,   // mp-L1 cta row 14
        l1_preload: 0.30,
        l1_stale_read: 0.0,           // fenced rows 0
        keep_stale_after_cg: 0.00001, // coRR-L2-L1: 2
        l1_invalidate_scope: Some(FenceScope::Gl),
    },
};

static GTX_TITAN: ChipProfile = ChipProfile {
    name: "GTX Titan",
    short: "Titan",
    vendor: Vendor::Nvidia,
    arch: "Kepler",
    year: 2013,
    num_sms: 14,
    warp_size: 32,
    base: BaseWeights {
        wr: 0.085,              // sb 6673 (Tab. 6 col 12)
        rw: 0.04,               // lb 2247
        wwrr: 0.055,            // mp 4347; mp-L1 6011
        rr_same: 0.42,          // coRR 9985 (col 16)
        rr_same_mixed: 0.0008,  // coRR-L2-L1 no-fence: 141
        shared: 0.030,          // mp-volatile 2188
        rmw_first_factor: 2.9,  // dlb-lb 2292 vs lb 2247
        rmw_second_factor: 0.3, // cas-sl 512
        cta_fence_leak: 0.28,   // mp-L1 cta row 1696 over 6011
        l1_preload: 0.30,
        l1_stale_read: 0.0,
        keep_stale_after_cg: 0.001, // coRR-L2-L1 contribution
        l1_invalidate_scope: Some(FenceScope::Gl),
    },
};

static GTX750: ChipProfile = ChipProfile {
    name: "GTX 750",
    short: "GTX7",
    vendor: Vendor::Nvidia,
    arch: "Maxwell",
    year: 2014,
    num_sms: 4,
    warp_size: 32,
    base: BaseWeights {
        wr: 0.0,
        rw: 0.0,
        wwrr: 0.000015, // mp-L1 no-fence: 3
        rr_same: 0.0,
        rr_same_mixed: 0.0,
        shared: 0.0,
        rmw_first_factor: 0.0,
        rmw_second_factor: 0.0,
        cta_fence_leak: 0.0,
        l1_preload: 0.0,
        l1_stale_read: 0.0,
        keep_stale_after_cg: 0.0,
        l1_invalidate_scope: Some(FenceScope::Gl),
    },
};

static HD6570: ChipProfile = ChipProfile {
    name: "Radeon HD 6570",
    short: "HD6570",
    vendor: Vendor::Amd,
    arch: "TeraScale 2",
    year: 2011,
    num_sms: 8,
    warp_size: 64,
    base: BaseWeights {
        wr: 0.0,      // sb: not observed
        rw: 0.12,     // dlb-lb is "n/a" (compiler), but GCN-like hw rate
        wwrr: 0.17,   // OpenCL mp 9327 (Sec. 3.1.2)
        rr_same: 0.0, // coRR not observed on AMD
        rr_same_mixed: 0.0,
        shared: 0.02,
        rmw_first_factor: 0.5,
        rmw_second_factor: 0.48, // cas-sl 508
        cta_fence_leak: 0.0,     // OpenCL global fences work when present
        l1_preload: 0.0,
        l1_stale_read: 0.0,
        keep_stale_after_cg: 0.0,
        l1_invalidate_scope: Some(FenceScope::Gl),
    },
};

static HD7970: ChipProfile = ChipProfile {
    name: "Radeon HD 7970",
    short: "HD7970",
    vendor: Vendor::Amd,
    arch: "GCN 1.0",
    year: 2012,
    num_sms: 32,
    warp_size: 64,
    base: BaseWeights {
        wr: 0.00003, // sb: 2/100k, bank-conflict columns only
        rw: 0.55,    // lb 38664
        wwrr: 0.036, // mp 2542
        rr_same: 0.0,
        rr_same_mixed: 0.0,
        shared: 0.01,
        rmw_first_factor: 1.25, // dlb-lb 13591
        rmw_second_factor: 2.6, // cas-sl 748 (> mp rate: capped at perform time)
        cta_fence_leak: 0.0,
        l1_preload: 0.0,
        l1_stale_read: 0.0,
        keep_stale_after_cg: 0.0,
        l1_invalidate_scope: Some(FenceScope::Gl),
    },
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_resolve() {
        for chip in Chip::ALL {
            let p = chip.profile();
            assert!(!p.name.is_empty());
            assert!(p.num_sms > 0 && p.warp_size >= 32);
        }
        assert_eq!(Chip::ALL.len(), 8);
        assert_eq!(Chip::TABLED.len(), 7);
    }

    #[test]
    fn column_numbering_matches_tab6() {
        assert_eq!(Incantations::none().column(), 1);
        assert_eq!(Incantations::all_on().column(), 16);
        assert_eq!(Incantations::best_inter_cta().column(), 12);
        let combos = Incantations::all_combinations();
        assert_eq!(combos.len(), 16);
        for (i, c) in combos.iter().enumerate() {
            assert_eq!(c.column(), i + 1);
        }
        // Column 5 = bank conflicts alone.
        let c5 = combos[4];
        assert!(c5.bank_conflicts && !c5.memory_stress && !c5.thread_sync && !c5.thread_rand);
    }

    #[test]
    fn nvidia_needs_memory_stress_for_inter_cta() {
        let titan = Chip::GtxTitan.profile();
        for inc in Incantations::all_combinations() {
            let w = titan.weights(&inc);
            if !inc.memory_stress {
                assert_eq!(w.wr, 0.0, "sb must be impossible without stress ({inc})");
                assert_eq!(w.rw, 0.0, "lb must be impossible without stress ({inc})");
            }
        }
        // But coRR is reachable with bank conflicts + thread randomisation.
        let w = titan.weights(&Incantations {
            memory_stress: false,
            bank_conflicts: true,
            thread_sync: false,
            thread_rand: true,
        });
        assert!(w.rr_same > 0.0);
    }

    #[test]
    fn amd_weak_without_any_incantations() {
        let w = Chip::RadeonHd7970.profile().weights(&Incantations::none());
        assert!(w.rw > 0.1, "HD7970 lb must fire with no incantations");
        assert!(w.wwrr > 0.0);
        assert_eq!(w.rr_same, 0.0, "no coRR on AMD");
    }

    #[test]
    fn gtx280_is_strong() {
        for inc in Incantations::all_combinations() {
            let w = Chip::Gtx280.profile().weights(&inc);
            assert_eq!(w.wr + w.rw + w.wwrr + w.rr_same + w.shared, 0.0);
            assert_eq!(w.l1_preload, 0.0);
        }
    }

    #[test]
    fn bank_conflicts_dampen_inter_cta_on_nvidia() {
        let titan = Chip::GtxTitan.profile();
        let col12 = titan.weights(&Incantations::best_inter_cta());
        let col16 = titan.weights(&Incantations::all_on());
        assert!(
            col16.rw < col12.rw,
            "Tab. 6: lb 2247 (col 12) vs 486 (col 16)"
        );
        assert!(col16.wr < col12.wr);
    }

    #[test]
    fn thread_rand_boosts_corr() {
        let titan = Chip::GtxTitan.profile();
        let col15 = titan.weights(&Incantations {
            memory_stress: true,
            bank_conflicts: true,
            thread_sync: true,
            thread_rand: false,
        });
        let col16 = titan.weights(&Incantations::all_on());
        assert!(col16.rr_same > 2.0 * col15.rr_same, "Tab. 6: 3993 → 9985");
    }

    #[test]
    fn tesc_fences_never_invalidate_l1() {
        assert_eq!(Chip::TeslaC2075.profile().base.l1_invalidate_scope, None);
        assert_eq!(
            Chip::Gtx540m.profile().base.l1_invalidate_scope,
            Some(FenceScope::Gl)
        );
    }
}
