//! Diagnostics: severity, message, span, notes — and the caret renderer.

use std::fmt;

use crate::source::SourceFile;
use crate::span::Span;

/// How bad a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Informational — never affects exit status.
    Note,
    /// Suspicious but accepted input.
    Warning,
    /// The input is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A secondary remark attached to a [`Diagnostic`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Note {
    /// The remark.
    pub message: String,
    /// An optional position it refers to.
    pub span: Option<Span>,
}

/// One problem (or remark) found in a source file.
///
/// Rendered with [`Diagnostic::render`] as the familiar compiler shape:
///
/// ```text
/// error: unknown opcode "frobnicate"
///   --> tests/bad.litmus:3:1
///    |
///  3 | frobnicate r1 ;
///    | ^^^^^^^^^^
///    = note: opcodes are ld, st, atom, membar, mov, …
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Error, warning or note.
    pub severity: Severity,
    /// The primary message.
    pub message: String,
    /// The primary position, when attributable.
    pub span: Option<Span>,
    /// Secondary remarks.
    pub notes: Vec<Note>,
}

impl Diagnostic {
    /// An error with no span yet.
    pub fn error(message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span: None,
            notes: Vec::new(),
        }
    }

    /// A warning with no span yet.
    pub fn warning(message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(message)
        }
    }

    /// Attaches the primary span.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Appends an unspanned note.
    #[must_use]
    pub fn with_note(mut self, message: impl Into<String>) -> Self {
        self.notes.push(Note {
            message: message.into(),
            span: None,
        });
        self
    }

    /// Appends a spanned note.
    #[must_use]
    pub fn with_note_at(mut self, message: impl Into<String>, span: Span) -> Self {
        self.notes.push(Note {
            message: message.into(),
            span: Some(span),
        });
        self
    }

    /// `true` for error severity.
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// The 1-based line of the primary span in `file`, when spanned.
    #[must_use]
    pub fn line_in(&self, file: &SourceFile) -> Option<usize> {
        self.span.map(|s| file.pos(s).line as usize)
    }

    /// One-line form: `path:line:col: severity: message`.
    #[must_use]
    pub fn one_line(&self, file: &SourceFile) -> String {
        match self.span {
            Some(span) => format!(
                "{}:{}: {}: {}",
                file.name(),
                file.pos(span),
                self.severity,
                self.message
            ),
            None => format!("{}: {}: {}", file.name(), self.severity, self.message),
        }
    }

    /// Renders the full caret-underline form (see the type-level example).
    #[must_use]
    pub fn render(&self, file: &SourceFile) -> String {
        let mut out = format!("{}: {}\n", self.severity, self.message);
        if let Some(span) = self.span {
            let pos = file.pos(span);
            let line_text = file.line_text(pos.line);
            let gutter = pos.line.to_string();
            let pad = " ".repeat(gutter.len());
            out.push_str(&format!("{pad}--> {}:{pos}\n", file.name()));
            out.push_str(&format!("{pad} |\n"));
            out.push_str(&format!("{gutter} | {line_text}\n"));
            out.push_str(&format!("{pad} | {}\n", caret_line(file, span, line_text)));
        }
        for note in &self.notes {
            match note.span {
                Some(s) => {
                    out.push_str(&format!("  = note: {} (at {})", note.message, file.pos(s)));
                }
                None => out.push_str(&format!("  = note: {}", note.message)),
            }
            out.push('\n');
        }
        out
    }
}

/// The `^^^^` underline for `span` on its first line. Tabs in the
/// leading text are preserved so the carets stay aligned in terminals.
fn caret_line(file: &SourceFile, span: Span, line_text: &str) -> String {
    let line_start = file.line_start(file.pos(span).line);
    let start_in_line = (span.start as usize).saturating_sub(line_start);
    let end_in_line = (span.end as usize)
        .saturating_sub(line_start)
        .min(line_text.len())
        .max(start_in_line);
    let mut underline = String::new();
    for c in line_text[..start_in_line.min(line_text.len())].chars() {
        underline.push(if c == '\t' { '\t' } else { ' ' });
    }
    let width = line_text
        .get(start_in_line..end_in_line)
        .map(|s| s.chars().count())
        .unwrap_or(0)
        .max(1);
    for _ in 0..width {
        underline.push('^');
    }
    underline
}

/// Renders every diagnostic in order, blank-line separated.
#[must_use]
pub fn render_all(diags: &[Diagnostic], file: &SourceFile) -> String {
    let mut out = String::new();
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&d.render(file));
    }
    out
}

/// `true` if any diagnostic is an error.
#[must_use]
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

/// The outcome of a diagnosing parse: possibly a value, plus everything
/// the parser had to say. A parser with error recovery can report many
/// errors in one pass, and can produce warnings alongside a success.
#[derive(Clone, Debug)]
pub struct Parsed<T> {
    /// The parsed value — `Some` only if parsing recovered enough to
    /// build one (there may still be *warnings* in `diagnostics`).
    pub value: Option<T>,
    /// All diagnostics, in source order.
    pub diagnostics: Vec<Diagnostic>,
}

impl<T> Parsed<T> {
    /// A clean success.
    pub fn success(value: T) -> Self {
        Parsed {
            value: Some(value),
            diagnostics: Vec::new(),
        }
    }

    /// A failure carrying its diagnostics.
    pub fn failure(diagnostics: Vec<Diagnostic>) -> Self {
        Parsed {
            value: None,
            diagnostics,
        }
    }

    /// `true` if any diagnostic is an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        has_errors(&self.diagnostics)
    }

    /// Collapses to `Ok(value)` iff a value was produced *and* no error
    /// diagnostics were emitted; otherwise `Err(all diagnostics)`.
    ///
    /// # Errors
    ///
    /// Returns every collected diagnostic (an "empty input" error is
    /// synthesised if a parser produced neither value nor diagnostics).
    pub fn into_result(self) -> Result<T, Vec<Diagnostic>> {
        if has_errors(&self.diagnostics) {
            return Err(self.diagnostics);
        }
        match self.value {
            Some(v) => Ok(v),
            None => {
                let mut diags = self.diagnostics;
                if diags.is_empty() {
                    diags.push(Diagnostic::error("empty input"));
                }
                Err(diags)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caret_spans_the_token() {
        let f = SourceFile::new("a.litmus", "GPU_PTX t\nfrobnicate r1 ;\n");
        let span = f.span_of_substr("frobnicate").unwrap();
        let d = Diagnostic::error("unknown opcode").with_span(span);
        let r = d.render(&f);
        assert!(r.contains("error: unknown opcode"), "{r}");
        assert!(r.contains("--> a.litmus:2:1"), "{r}");
        assert!(r.contains("2 | frobnicate r1 ;"), "{r}");
        assert!(r.contains("| ^^^^^^^^^^\n"), "{r}");
    }

    #[test]
    fn caret_mid_line_alignment() {
        let f = SourceFile::new("f", "let x = po ^ 2\n");
        let span = f.span_of_substr("^").unwrap();
        let r = Diagnostic::error("stray '^'").with_span(span).render(&f);
        let caret_row = r.lines().nth(4).unwrap();
        let src_row = r.lines().nth(3).unwrap();
        // The caret column in the underline row matches '^' in the source row.
        assert_eq!(
            caret_row.find('^').unwrap(),
            src_row.find("^ 2").unwrap(),
            "{r}"
        );
    }

    #[test]
    fn eof_spans_render() {
        let f = SourceFile::new("f", "acyclic po");
        let d = Diagnostic::error("expected 'as'").with_span(f.eof_span());
        let r = d.render(&f);
        assert!(r.contains("f:1:11"), "{r}");
        assert!(r.contains('^'), "{r}");
    }

    #[test]
    fn notes_and_one_line() {
        let f = SourceFile::new("m.cat", "let x = po\n");
        let span = f.span_of_substr("po").unwrap();
        let d = Diagnostic::warning("shadowed binding")
            .with_span(span)
            .with_note("previous definition here")
            .with_note_at("first bound here", Span::new(0, 3));
        let r = d.render(&f);
        assert!(r.contains("= note: previous definition here"), "{r}");
        assert!(r.contains("= note: first bound here (at 1:1)"), "{r}");
        assert_eq!(d.one_line(&f), "m.cat:1:9: warning: shadowed binding");
    }

    #[test]
    fn parsed_result_semantics() {
        let ok: Parsed<i32> = Parsed::success(7);
        assert_eq!(ok.into_result().unwrap(), 7);

        let warned = Parsed {
            value: Some(7),
            diagnostics: vec![Diagnostic::warning("meh")],
        };
        assert_eq!(warned.into_result().unwrap(), 7);

        let failed: Parsed<i32> = Parsed::failure(vec![Diagnostic::error("no")]);
        assert_eq!(failed.into_result().unwrap_err().len(), 1);

        let empty: Parsed<i32> = Parsed {
            value: None,
            diagnostics: vec![],
        };
        assert!(empty.into_result().is_err());
    }

    #[test]
    fn render_all_separates() {
        let f = SourceFile::new("f", "a\nb\n");
        let ds = vec![
            Diagnostic::error("one").with_span(Span::new(0, 1)),
            Diagnostic::error("two").with_span(Span::new(2, 3)),
        ];
        let r = render_all(&ds, &f);
        assert!(r.contains("error: one"), "{r}");
        assert!(r.contains("error: two"), "{r}");
        assert!(has_errors(&ds));
        assert!(!has_errors(&[Diagnostic::warning("w")]));
    }
}
