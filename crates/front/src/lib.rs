//! Shared parsing frontend for the `weakgpu` textual formats.
//!
//! Both front doors of the system — the GPU litmus format (paper Fig. 12)
//! and the `.cat` model language (paper Figs. 15–16) — parse through this
//! crate. It provides the substrate a diagnostics-first frontend needs:
//!
//! * [`SourceFile`] / [`SourceMap`] — named source texts with byte-offset →
//!   `line:col` mapping and line extraction,
//! * [`Span`] / [`Spanned`] — half-open byte ranges attached to tokens and
//!   AST nodes,
//! * [`Diagnostic`] — severity + message + span + notes, rendered as a
//!   compiler-style caret underline ([`Diagnostic::render`]),
//! * [`Cursor`] — a recursive-descent cursor over a spanned token stream
//!   with *expected-token-set accumulation*: every failed [`Cursor::eat`]
//!   at the furthest point reached is remembered, so the eventual error
//!   reads "expected X, Y or Z, found W at line:col",
//! * [`Memo`] — a packrat memo table keyed by `(rule, position)` so
//!   backtracking grammars stay linear.
//!
//! The crate is deliberately dependency-free and knows nothing about
//! litmus tests or `.cat` programs; the language crates build their
//! grammars on top of it.
//!
//! # Example
//!
//! ```
//! use weakgpu_front::{Diagnostic, SourceFile};
//!
//! let file = SourceFile::new("demo.litmus", "GPU_PTX t\nfrobnicate r1 ;\n");
//! let span = file.span_of_substr("frobnicate").unwrap();
//! let diag = Diagnostic::error("unknown opcode \"frobnicate\"").with_span(span);
//! let rendered = diag.render(&file);
//! assert!(rendered.contains("demo.litmus:2:1"));
//! assert!(rendered.contains("^^^^^^^^^^"));
//! ```

pub mod cursor;
pub mod diag;
pub mod source;
pub mod span;

pub use cursor::{Cursor, Memo, Token, TokenKind};
pub use diag::{has_errors, render_all, Diagnostic, Note, Parsed, Severity};
pub use source::{LineCol, SourceFile, SourceMap};
pub use span::{Span, Spanned};
