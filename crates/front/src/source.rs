//! Source files and byte-offset → `line:col` mapping.

use std::fmt;

use crate::span::Span;

/// A 1-based line/column position.
///
/// Columns count *characters* (not bytes), matching what an editor shows.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based character column.
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One named source text with a precomputed line index.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SourceFile {
    name: String,
    text: String,
    /// Byte offset of the start of each line (line 1 starts at 0).
    line_starts: Vec<u32>,
}

impl SourceFile {
    /// Wraps `text` under display name `name` (usually the path).
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(u32::try_from(i + 1).expect("source fits u32"));
            }
        }
        SourceFile {
            name: name.into(),
            text,
            line_starts,
        }
    }

    /// The display name (path) of the file.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full source text.
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Number of lines (a trailing newline does not start a new line for
    /// counting purposes unless followed by text).
    #[must_use]
    pub fn num_lines(&self) -> usize {
        self.line_starts.len()
    }

    /// The 1-based line containing byte `offset` (clamped to the last
    /// line for out-of-range offsets).
    #[must_use]
    pub fn line_of(&self, offset: usize) -> u32 {
        let offset = u32::try_from(offset.min(self.text.len())).expect("source fits u32");
        match self.line_starts.binary_search(&offset) {
            Ok(i) => u32::try_from(i + 1).expect("line count fits u32"),
            Err(i) => u32::try_from(i).expect("line count fits u32"),
        }
    }

    /// Maps a byte offset to its 1-based [`LineCol`].
    #[must_use]
    pub fn line_col(&self, offset: usize) -> LineCol {
        let offset = offset.min(self.text.len());
        let line = self.line_of(offset);
        let start = self.line_starts[(line - 1) as usize] as usize;
        let col = self.text[start..offset].chars().count() + 1;
        LineCol {
            line,
            col: u32::try_from(col).expect("column fits u32"),
        }
    }

    /// The [`LineCol`] of a span's start.
    #[must_use]
    pub fn pos(&self, span: Span) -> LineCol {
        self.line_col(span.start as usize)
    }

    /// The text of 1-based line `line`, without its trailing newline.
    /// Empty for out-of-range lines.
    #[must_use]
    pub fn line_text(&self, line: u32) -> &str {
        let Some(&start) = self.line_starts.get((line.max(1) - 1) as usize) else {
            return "";
        };
        let rest = &self.text[start as usize..];
        rest.lines().next().unwrap_or("")
    }

    /// The byte offset where 1-based `line` starts.
    #[must_use]
    pub fn line_start(&self, line: u32) -> usize {
        self.line_starts
            .get((line.max(1) - 1) as usize)
            .copied()
            .unwrap_or_else(|| u32::try_from(self.text.len()).expect("source fits u32"))
            as usize
    }

    /// The span of a `&str` that *borrows from this file's text* —
    /// pointer arithmetic turns any slice produced by `split`, `trim`,
    /// `strip_prefix` … back into positions, so line-oriented grammars
    /// get precise spans without a separate tokenizer.
    ///
    /// Returns `None` if `slice` does not point into this file.
    #[must_use]
    pub fn span_of(&self, slice: &str) -> Option<Span> {
        let base = self.text.as_ptr() as usize;
        let p = slice.as_ptr() as usize;
        if p < base || p + slice.len() > base + self.text.len() {
            return None;
        }
        let start = p - base;
        Some(Span::new(start, start + slice.len()))
    }

    /// The span of the first occurrence of `needle` in the text —
    /// convenience for tests and synthetic sources.
    #[must_use]
    pub fn span_of_substr(&self, needle: &str) -> Option<Span> {
        let start = self.text.find(needle)?;
        Some(Span::new(start, start + needle.len()))
    }

    /// A zero-width span at end of file.
    #[must_use]
    pub fn eof_span(&self) -> Span {
        Span::point(self.text.len())
    }
}

/// An ordered collection of [`SourceFile`]s, for drivers that diagnose
/// several files in one invocation (`weakgpu check a.litmus b.cat …`).
#[derive(Clone, Default, Debug)]
pub struct SourceMap {
    files: Vec<SourceFile>,
}

impl SourceMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        SourceMap::default()
    }

    /// Adds a file and returns its index.
    pub fn add(&mut self, name: impl Into<String>, text: impl Into<String>) -> usize {
        self.files.push(SourceFile::new(name, text));
        self.files.len() - 1
    }

    /// The file at `id`.
    #[must_use]
    pub fn get(&self, id: usize) -> Option<&SourceFile> {
        self.files.get(id)
    }

    /// All files, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &SourceFile> {
        self.files.iter()
    }

    /// Number of files.
    #[must_use]
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// `true` when no files were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_mapping() {
        let f = SourceFile::new("t", "ab\ncdef\n\nx");
        assert_eq!(f.num_lines(), 4);
        assert_eq!(f.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(f.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(f.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(f.line_col(6), LineCol { line: 2, col: 4 });
        assert_eq!(f.line_col(8), LineCol { line: 3, col: 1 });
        assert_eq!(f.line_col(9), LineCol { line: 4, col: 1 });
        // Past-the-end clamps to EOF.
        assert_eq!(f.line_col(999), LineCol { line: 4, col: 2 });
    }

    #[test]
    fn line_text_extraction() {
        let f = SourceFile::new("t", "first\nsecond\nthird");
        assert_eq!(f.line_text(1), "first");
        assert_eq!(f.line_text(2), "second");
        assert_eq!(f.line_text(3), "third");
        assert_eq!(f.line_text(9), "");
    }

    #[test]
    fn columns_count_chars_not_bytes() {
        let f = SourceFile::new("t", "é x");
        // 'é' is two bytes; 'x' is at byte 3 but char column 3.
        assert_eq!(f.line_col(3), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn span_of_borrowed_slices() {
        let f = SourceFile::new("t", "GPU_PTX name\nrow | cell ;\n");
        let line2 = f.text().lines().nth(1).unwrap();
        let cell = line2.split('|').nth(1).unwrap().trim();
        let span = f.span_of(cell).unwrap();
        assert_eq!(&f.text()[span.start as usize..span.end as usize], "cell ;");
        assert_eq!(f.pos(span), LineCol { line: 2, col: 7 });
        // A slice from elsewhere is rejected.
        assert_eq!(f.span_of("not from this file"), None);
    }

    #[test]
    fn source_map_ordering() {
        let mut m = SourceMap::new();
        let a = m.add("a", "1");
        let b = m.add("b", "2");
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(a).unwrap().name(), "a");
        assert_eq!(m.get(b).unwrap().text(), "2");
        assert_eq!(m.iter().count(), 2);
    }
}
