//! Byte-offset spans and spanned values.

use std::fmt;

/// A half-open byte range `[start, end)` into one [`crate::SourceFile`].
///
/// Spans are plain offsets — they carry no file identity. All the
/// grammars in this workspace parse one file at a time, so the file is
/// threaded separately (e.g. into [`crate::Diagnostic::render`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Span {
    /// Inclusive start byte offset.
    pub start: u32,
    /// Exclusive end byte offset.
    pub end: u32,
}

impl Span {
    /// A span over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the offsets exceed `u32::MAX` — source files are bounded
    /// well below 4 GiB.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        Span {
            start: u32::try_from(start).expect("source offset fits u32"),
            end: u32::try_from(end.max(start)).expect("source offset fits u32"),
        }
    }

    /// A zero-width span at `at` (e.g. an end-of-file position).
    #[must_use]
    pub fn point(at: usize) -> Self {
        Span::new(at, at)
    }

    /// The smallest span covering both `self` and `other`.
    #[must_use]
    pub fn join(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// `true` for zero-width spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A value with the span it was parsed from.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Spanned<T> {
    /// The value.
    pub node: T,
    /// Where it came from.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Attaches a span to a value.
    pub fn new(node: T, span: Span) -> Self {
        Spanned { node, span }
    }

    /// Maps the value, keeping the span.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Spanned<U> {
        Spanned {
            node: f(self.node),
            span: self.span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.join(b), Span::new(3, 12));
        assert_eq!(b.join(a), Span::new(3, 12));
    }

    #[test]
    fn point_is_empty() {
        let p = Span::point(4);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn new_clamps_inverted_ranges() {
        let s = Span::new(5, 2);
        assert_eq!(s.start, 5);
        assert_eq!(s.end, 5);
    }

    #[test]
    fn spanned_map_keeps_span() {
        let s = Spanned::new(21, Span::new(1, 2)).map(|n| n * 2);
        assert_eq!(s.node, 42);
        assert_eq!(s.span, Span::new(1, 2));
    }
}
