//! A recursive-descent token cursor with expected-set accumulation and a
//! packrat memo table.
//!
//! The cursor owns no grammar: callers [`Cursor::eat`] / [`Cursor::expect`]
//! token kinds and [`Cursor::rewind`] to backtrack. Every failed match at
//! the *furthest position reached so far* is recorded, so when the whole
//! parse fails the error lists everything that would have been legal there
//! — "expected `;`, `|` or end of line, found `^-1`" — instead of whatever
//! the last alternative happened to want.

use std::collections::HashMap;

use crate::diag::Diagnostic;
use crate::span::Span;

/// What a token kind must provide: equality for matching and a short
/// human name for "expected …" lists (e.g. `` `;` `` or `identifier`).
pub trait TokenKind: Clone + PartialEq {
    /// How the kind reads inside an "expected …" message.
    fn describe(&self) -> String;
}

/// One token: a kind plus where it came from.
#[derive(Clone, PartialEq, Debug)]
pub struct Token<K> {
    /// The token's kind (usually carrying its text).
    pub kind: K,
    /// Its source span.
    pub span: Span,
}

impl<K> Token<K> {
    /// Bundles a kind with its span.
    pub fn new(kind: K, span: Span) -> Self {
        Token { kind, span }
    }
}

/// A cursor over a token slice.
///
/// Positions returned by [`Cursor::mark`] are plain indices; [`Cursor::rewind`]
/// restores them, which is all a PEG-style grammar needs for backtracking.
pub struct Cursor<'t, K: TokenKind> {
    tokens: &'t [Token<K>],
    pos: usize,
    /// Zero-width position just past the last token (for EOF spans).
    eof: Span,
    /// Furthest position any match was attempted at.
    furthest: usize,
    /// Descriptions of kinds that failed to match at `furthest`.
    expected: Vec<String>,
}

impl<'t, K: TokenKind> Cursor<'t, K> {
    /// A cursor at the start of `tokens`. `eof_at` is the byte offset used
    /// for errors reported past the last token.
    pub fn new(tokens: &'t [Token<K>], eof_at: usize) -> Self {
        Cursor {
            tokens,
            pos: 0,
            eof: Span::point(eof_at),
            furthest: 0,
            expected: Vec::new(),
        }
    }

    /// Current index into the token stream.
    #[must_use]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Saves the current position for a later [`Cursor::rewind`].
    #[must_use]
    pub fn mark(&self) -> usize {
        self.pos
    }

    /// Restores a position saved by [`Cursor::mark`]. The expected-set
    /// bookkeeping is *not* rewound — that is the point: failures at the
    /// furthest position survive backtracking.
    pub fn rewind(&mut self, mark: usize) {
        self.pos = mark;
    }

    /// `true` once every token is consumed.
    #[must_use]
    pub fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// The current token, if any.
    #[must_use]
    pub fn peek(&self) -> Option<&Token<K>> {
        self.tokens.get(self.pos)
    }

    /// The current token's kind, if any.
    #[must_use]
    pub fn peek_kind(&self) -> Option<&K> {
        self.peek().map(|t| &t.kind)
    }

    /// The span of the current token, or the EOF point.
    #[must_use]
    pub fn here(&self) -> Span {
        self.peek().map_or(self.eof, |t| t.span)
    }

    /// Consumes and returns the current token unconditionally.
    pub fn bump(&mut self) -> Option<&'t Token<K>> {
        let t = self.tokens.get(self.pos)?;
        self.pos += 1;
        if self.pos > self.furthest {
            self.furthest = self.pos;
            self.expected.clear();
        }
        t.into()
    }

    /// Consumes the current token iff its kind equals `kind`; records the
    /// expectation on failure.
    pub fn eat(&mut self, kind: &K) -> Option<&'t Token<K>> {
        if self.peek_kind() == Some(kind) {
            self.bump()
        } else {
            self.note_expected(kind.describe());
            None
        }
    }

    /// Consumes the current token iff `f` maps its kind to `Some`; records
    /// `wanted` as the expectation on failure. This is the hook for token
    /// classes ("identifier", "number") rather than exact kinds.
    pub fn eat_map<R>(&mut self, wanted: &str, f: impl Fn(&K) -> Option<R>) -> Option<(R, Span)> {
        match self.peek() {
            Some(t) => match f(&t.kind) {
                Some(r) => {
                    let span = t.span;
                    self.bump();
                    Some((r, span))
                }
                None => {
                    self.note_expected(wanted.to_string());
                    None
                }
            },
            None => {
                self.note_expected(wanted.to_string());
                None
            }
        }
    }

    /// Like [`Cursor::eat`] but produces the accumulated "expected …"
    /// diagnostic on failure.
    ///
    /// # Errors
    ///
    /// Returns the furthest-failure diagnostic when the kinds differ.
    pub fn expect(&mut self, kind: &K) -> Result<&'t Token<K>, Diagnostic> {
        match self.eat(kind) {
            Some(t) => Ok(t),
            None => Err(self.expected_error()),
        }
    }

    /// Records that `what` would have been legal at the current position,
    /// feeding the furthest-failure expected set.
    pub fn note_expected(&mut self, what: String) {
        if self.pos > self.furthest {
            self.furthest = self.pos;
            self.expected.clear();
        }
        if self.pos == self.furthest && !self.expected.contains(&what) {
            self.expected.push(what);
        }
    }

    /// The diagnostic for the accumulated furthest failure: "expected X, Y
    /// or Z, found W", spanned at the furthest token reached.
    #[must_use]
    pub fn expected_error(&self) -> Diagnostic {
        let at = self.furthest.max(self.pos);
        let (found, span) = match self.tokens.get(at) {
            Some(t) => (format!("found {}", t.kind.describe()), t.span),
            None => ("found end of input".to_string(), self.eof),
        };
        let msg = if self.expected.is_empty() {
            format!("unexpected input; {found}")
        } else {
            format!("expected {}, {found}", join_or(&self.expected))
        };
        Diagnostic::error(msg).with_span(span)
    }

    /// An error at the current token with a custom message.
    #[must_use]
    pub fn error_here(&self, message: impl Into<String>) -> Diagnostic {
        Diagnostic::error(message).with_span(self.here())
    }

    /// Skips tokens until `stop` matches or the stream ends; used for
    /// error recovery (resynchronise on `;`, a keyword, …). Returns how
    /// many tokens were skipped.
    pub fn skip_until(&mut self, stop: impl Fn(&K) -> bool) -> usize {
        let from = self.pos;
        while let Some(k) = self.peek_kind() {
            if stop(k) {
                break;
            }
            self.pos += 1;
        }
        if self.pos > self.furthest {
            self.furthest = self.pos;
            self.expected.clear();
        }
        self.pos - from
    }
}

/// "a", "a or b", "a, b or c".
fn join_or(items: &[String]) -> String {
    match items {
        [] => String::new(),
        [one] => one.clone(),
        [init @ .., last] => format!("{} or {}", init.join(", "), last),
    }
}

/// A packrat memo table: caches a rule's outcome at a position so
/// backtracking grammars re-derive nothing. Keyed by `(rule_id, pos)`;
/// stores the result *and* the position the rule ended at.
#[derive(Default)]
pub struct Memo<R: Clone> {
    table: HashMap<(u32, usize), Option<(R, usize)>>,
}

impl<R: Clone> Memo<R> {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Memo {
            table: HashMap::new(),
        }
    }

    /// Runs `rule` at the cursor's current position, memoised under
    /// `rule_id`. On a cache hit the cursor jumps straight to the stored
    /// end position (or stays put for a cached failure). `rule` returns
    /// `None` on failure and must leave the cursor wherever it likes —
    /// the memo rewinds on failure either way.
    pub fn apply<K: TokenKind>(
        &mut self,
        rule_id: u32,
        cur: &mut Cursor<'_, K>,
        rule: impl FnOnce(&mut Cursor<'_, K>, &mut Self) -> Option<R>,
    ) -> Option<R> {
        let start = cur.pos();
        if let Some(hit) = self.table.get(&(rule_id, start)) {
            return match hit {
                Some((r, end)) => {
                    cur.rewind(*end);
                    Some(r.clone())
                }
                None => None,
            };
        }
        let out = rule(cur, self);
        match &out {
            Some(r) => {
                self.table
                    .insert((rule_id, start), Some((r.clone(), cur.pos())));
            }
            None => {
                cur.rewind(start);
                self.table.insert((rule_id, start), None);
            }
        }
        out
    }

    /// Number of memoised entries (for tests / instrumentation).
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when nothing is memoised yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[derive(Clone, PartialEq, Debug)]
    enum K {
        Ident(String),
        Sym(char),
    }

    impl TokenKind for K {
        fn describe(&self) -> String {
            match self {
                K::Ident(s) => format!("identifier `{s}`"),
                K::Sym(c) => format!("`{c}`"),
            }
        }
    }

    fn toks(spec: &str) -> Vec<Token<K>> {
        // Each whitespace-separated word is a token; single punctuation
        // chars become Sym, everything else Ident. Spans are synthetic.
        let mut out = Vec::new();
        let mut at = 0usize;
        for w in spec.split_whitespace() {
            let kind = if w.len() == 1 && !w.chars().next().unwrap().is_alphanumeric() {
                K::Sym(w.chars().next().unwrap())
            } else {
                K::Ident(w.to_string())
            };
            out.push(Token::new(kind, Span::new(at, at + w.len())));
            at += w.len() + 1;
        }
        out
    }

    #[test]
    fn eat_and_expect() {
        let ts = toks("let x = y");
        let mut c = Cursor::new(&ts, 9);
        assert!(c.eat(&K::Ident("let".into())).is_some());
        assert!(c.eat(&K::Sym('=')).is_none()); // actually `x`
        assert!(c.eat(&K::Ident("x".into())).is_some());
        assert!(c.expect(&K::Sym('=')).is_ok());
        assert!(c.eat(&K::Ident("y".into())).is_some());
        assert!(c.at_end());
    }

    #[test]
    fn furthest_failure_wins_over_backtracking() {
        let ts = toks("a b !");
        let mut c = Cursor::new(&ts, 5);
        // Alternative 1: a b c — fails at position 2 wanting `c`.
        let m = c.mark();
        assert!(c.eat(&K::Ident("a".into())).is_some());
        assert!(c.eat(&K::Ident("b".into())).is_some());
        assert!(c.eat(&K::Ident("c".into())).is_none());
        c.rewind(m);
        // Alternative 2: x — fails immediately at position 0.
        assert!(c.eat(&K::Ident("x".into())).is_none());
        // The error reports the *furthest* failure (position 2), not the
        // most recent one, and lists what was expected there.
        let err = c.expected_error();
        assert!(err.message.contains("expected identifier `c`"), "{err:?}");
        assert!(err.message.contains("found `!`"), "{err:?}");
        assert_eq!(err.span, Some(Span::new(4, 5)));
    }

    #[test]
    fn expected_set_accumulates_alternatives() {
        let ts = toks("q");
        let mut c = Cursor::new(&ts, 1);
        assert!(c.eat(&K::Ident("a".into())).is_none());
        assert!(c.eat(&K::Ident("b".into())).is_none());
        assert!(c.eat(&K::Ident("a".into())).is_none()); // duplicate — deduped
        let err = c.expected_error();
        assert!(
            err.message
                .contains("expected identifier `a` or identifier `b`"),
            "{err:?}"
        );
    }

    #[test]
    fn eat_map_classes() {
        let ts = toks("x 7"); // both Idents under this toy lexer
        let mut c = Cursor::new(&ts, 3);
        let (name, span) = c
            .eat_map("identifier", |k| match k {
                K::Ident(s) if !s.chars().next().unwrap().is_ascii_digit() => Some(s.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(name, "x");
        assert_eq!(span, Span::new(0, 1));
        assert!(c
            .eat_map("identifier", |k| match k {
                K::Ident(s) if !s.chars().next().unwrap().is_ascii_digit() => Some(s.clone()),
                _ => None,
            })
            .is_none());
    }

    #[test]
    fn skip_until_recovers() {
        let ts = toks("junk junk ; next");
        let mut c = Cursor::new(&ts, 16);
        let skipped = c.skip_until(|k| *k == K::Sym(';'));
        assert_eq!(skipped, 2);
        assert_eq!(c.peek_kind(), Some(&K::Sym(';')));
    }

    #[test]
    fn eof_error() {
        let ts = toks("a");
        let mut c = Cursor::new(&ts, 1);
        c.bump();
        assert!(c.eat(&K::Sym(';')).is_none());
        let err = c.expected_error();
        assert!(err.message.contains("found end of input"), "{err:?}");
        assert_eq!(err.span, Some(Span::point(1)));
    }

    #[test]
    fn memo_caches_and_restores_position() {
        let ts = toks("a a a");
        let calls = Cell::new(0usize);
        let mut memo: Memo<String> = Memo::new();
        let mut c = Cursor::new(&ts, 5);

        let rule = |cur: &mut Cursor<'_, K>, _m: &mut Memo<String>| {
            calls.set(calls.get() + 1);
            let t = cur.eat(&K::Ident("a".into()))?;
            Some(t.kind.describe())
        };

        // First application runs the rule.
        let r1 = memo.apply(1, &mut c, rule);
        assert!(r1.is_some());
        assert_eq!(calls.get(), 1);
        let end = c.pos();

        // Rewind and re-apply: cache hit, no extra call, same end position.
        c.rewind(0);
        let r2 = memo.apply(1, &mut c, rule);
        assert_eq!(r1, r2);
        assert_eq!(calls.get(), 1);
        assert_eq!(c.pos(), end);

        // A different rule id at the same position runs fresh.
        c.rewind(0);
        let _ = memo.apply(2, &mut c, rule);
        assert_eq!(calls.get(), 2);
        assert_eq!(memo.len(), 2); // (1,0) and (2,0)
    }

    #[test]
    fn memo_caches_failures_and_rewinds() {
        let ts = toks("b");
        let calls = Cell::new(0usize);
        let mut memo: Memo<()> = Memo::new();
        let mut c = Cursor::new(&ts, 1);

        let rule = |cur: &mut Cursor<'_, K>, _m: &mut Memo<()>| {
            calls.set(calls.get() + 1);
            cur.eat(&K::Ident("a".into()))?;
            Some(())
        };

        assert!(memo.apply(7, &mut c, rule).is_none());
        assert_eq!(c.pos(), 0); // rewound on failure
        assert!(memo.apply(7, &mut c, rule).is_none()); // cached failure
        assert_eq!(calls.get(), 1);
    }
}
