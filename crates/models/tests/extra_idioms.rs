//! Model verdicts on the extended idiom corpus (wrc, isa2, iriw, rwc,
//! 2+2w, S, R) — the families the paper's generated validation covers.
//! These pin the scoped-RMO semantics on shapes beyond the paper's own
//! figures.

use weakgpu_axiom::{model_outcomes, EnumConfig, Model};
use weakgpu_litmus::corpus_extra as extra;
use weakgpu_litmus::{FenceScope, LitmusTest, ThreadScope};
use weakgpu_models::{ptx_model, rmo_model, sc_model, tso_model};

fn witnessed(test: &LitmusTest, model: &dyn Model) -> bool {
    model_outcomes(test, model, &EnumConfig::default())
        .unwrap_or_else(|e| panic!("{}: {e}", test.name()))
        .condition_witnessed
}

#[test]
fn sc_forbids_every_extra_idiom() {
    let sc = sc_model();
    for scope in [ThreadScope::IntraCta, ThreadScope::InterCta] {
        for test in [
            extra::wrc(scope, None),
            extra::isa2(scope, None),
            extra::iriw(scope, None),
            extra::rwc(scope, None),
            extra::two_plus_two_w(scope, None),
            extra::s_shape(scope, None),
            extra::r_shape(scope, None),
        ] {
            assert!(!witnessed(&test, &sc), "SC must forbid {}", test.name());
        }
    }
}

#[test]
fn ptx_allows_unfenced_extra_idioms() {
    let ptx = ptx_model();
    for test in [
        extra::wrc(ThreadScope::InterCta, None),
        extra::isa2(ThreadScope::InterCta, None),
        extra::iriw(ThreadScope::InterCta, None),
        extra::rwc(ThreadScope::InterCta, None),
        extra::two_plus_two_w(ThreadScope::InterCta, None),
        extra::s_shape(ThreadScope::InterCta, None),
        extra::r_shape(ThreadScope::InterCta, None),
    ] {
        assert!(witnessed(&test, &ptx), "PTX must allow {}", test.name());
    }
}

#[test]
fn gl_fences_forbid_extra_idioms_under_ptx() {
    let ptx = ptx_model();
    for scope in [ThreadScope::IntraCta, ThreadScope::InterCta] {
        for test in [
            extra::wrc(scope, Some(FenceScope::Gl)),
            extra::isa2(scope, Some(FenceScope::Gl)),
            extra::iriw(scope, Some(FenceScope::Gl)),
            extra::rwc(scope, Some(FenceScope::Gl)),
            extra::two_plus_two_w(scope, Some(FenceScope::Gl)),
            extra::s_shape(scope, Some(FenceScope::Gl)),
            extra::r_shape(scope, Some(FenceScope::Gl)),
        ] {
            assert!(
                !witnessed(&test, &ptx),
                "gl fences must forbid {} ({scope})",
                test.name()
            );
        }
    }
}

#[test]
fn cta_fences_work_intra_but_not_inter_cta() {
    let ptx = ptx_model();
    for (mk, name) in [
        (
            extra::wrc as fn(ThreadScope, Option<FenceScope>) -> LitmusTest,
            "wrc",
        ),
        (extra::iriw, "iriw"),
        (extra::two_plus_two_w, "2+2w"),
    ] {
        let intra = mk(ThreadScope::IntraCta, Some(FenceScope::Cta));
        let inter = mk(ThreadScope::InterCta, Some(FenceScope::Cta));
        assert!(
            !witnessed(&intra, &ptx),
            "{name}: cta fence works intra-CTA"
        );
        assert!(witnessed(&inter, &ptx), "{name}: cta fence leaks inter-CTA");
    }
}

#[test]
fn tso_verdicts_on_extra_idioms() {
    let tso = tso_model();
    // TSO forbids the multi-copy-atomicity violations …
    assert!(!witnessed(&extra::wrc(ThreadScope::InterCta, None), &tso));
    assert!(!witnessed(&extra::iriw(ThreadScope::InterCta, None), &tso));
    assert!(!witnessed(
        &extra::two_plus_two_w(ThreadScope::InterCta, None),
        &tso
    ));
    // … but allows R (its write→read relaxation can hide the store).
    assert!(witnessed(
        &extra::r_shape(ThreadScope::InterCta, None),
        &tso
    ));
}

#[test]
fn rmo_allows_unfenced_and_respects_any_fence() {
    let rmo = rmo_model();
    assert!(witnessed(&extra::iriw(ThreadScope::InterCta, None), &rmo));
    // Plain RMO has no scopes: even cta fences forbid inter-CTA wrc.
    assert!(!witnessed(
        &extra::wrc(ThreadScope::InterCta, Some(FenceScope::Cta)),
        &rmo
    ));
}

#[test]
fn model_strength_ordering_holds_on_extra_corpus() {
    let (sc, tso, rmo, ptx) = (sc_model(), tso_model(), rmo_model(), ptx_model());
    let cfg = EnumConfig::default();
    for test in extra::all_extra() {
        let s = model_outcomes(&test, &sc, &cfg).unwrap().allowed_outcomes;
        let t = model_outcomes(&test, &tso, &cfg).unwrap().allowed_outcomes;
        let r = model_outcomes(&test, &rmo, &cfg).unwrap().allowed_outcomes;
        let p = model_outcomes(&test, &ptx, &cfg).unwrap().allowed_outcomes;
        assert!(s.is_subset(&t), "SC ⊄ TSO on {}", test.name());
        assert!(t.is_subset(&r), "TSO ⊄ RMO on {}", test.name());
        assert!(r.is_subset(&p), "RMO ⊄ PTX on {}", test.name());
    }
}
