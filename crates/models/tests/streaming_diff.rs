//! Streaming ≡ materialised enumeration across every built-in model.
//!
//! [`model_outcomes`] streams candidates through the skeleton/overlay
//! visitor and judges borrowed views; the oracle below materialises the
//! full `Vec<Candidate>` and judges each owned execution. The two must
//! produce bit-identical [`ModelOutcomes`] — outcome sets, counts and
//! witness flag — for PTX, SC, TSO, RMO, the operational baseline, the
//! no-LLH ablation, and the natively-implemented PTX model (which
//! exercises the visitor's materialising fallback path).

use weakgpu_axiom::enumerate::{enumerate_executions, EnumConfig, ModelOutcomes};
use weakgpu_axiom::plan::EvalContext;
use weakgpu_axiom::{model_outcomes, Model};
use weakgpu_litmus::{corpus, FenceScope, LitmusTest, ThreadScope};
use weakgpu_models::{all_models, native::NativePtxModel, ptx_model_without_llh};

/// The pre-streaming judgement loop, kept as the differential oracle.
fn materialised_outcomes(test: &LitmusTest, model: &dyn Model, cfg: &EnumConfig) -> ModelOutcomes {
    let candidates = enumerate_executions(test, cfg).unwrap();
    let mut ctx = EvalContext::new();
    let mut all = std::collections::BTreeSet::new();
    let mut allowed = std::collections::BTreeSet::new();
    let mut num_allowed = 0;
    let mut witnessed = false;
    for c in &candidates {
        all.insert(c.outcome.clone());
        if model.allows_with(&mut ctx, &c.execution) {
            num_allowed += 1;
            if test.cond().witnessed_by(&c.outcome) {
                witnessed = true;
            }
            allowed.insert(c.outcome.clone());
        }
    }
    ModelOutcomes {
        all_outcomes: all,
        allowed_outcomes: allowed,
        num_candidates: candidates.len(),
        num_allowed,
        condition_witnessed: witnessed,
    }
}

fn test_suite() -> Vec<LitmusTest> {
    let mut tests = corpus::all();
    tests.extend([
        corpus::mp(ThreadScope::IntraCta, Some(FenceScope::Cta)),
        corpus::sb(ThreadScope::IntraCta, None),
        corpus::lb(ThreadScope::InterCta, Some(FenceScope::Cta)),
        corpus::mp_dep(ThreadScope::InterCta, FenceScope::Gl),
    ]);
    tests
}

#[test]
fn streaming_matches_materialised_for_every_builtin_model() {
    let cfg = EnumConfig::default();
    for model in all_models() {
        for test in test_suite() {
            let streamed = model_outcomes(&test, &model, &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
            let materialised = materialised_outcomes(&test, &model, &cfg);
            assert_eq!(
                streamed,
                materialised,
                "{} under {}",
                test.name(),
                Model::name(&model)
            );
        }
    }
}

#[test]
fn streaming_matches_materialised_for_the_ablation_model() {
    let cfg = EnumConfig::default();
    let model = ptx_model_without_llh();
    for test in test_suite() {
        assert_eq!(
            model_outcomes(&test, &model, &cfg).unwrap(),
            materialised_outcomes(&test, &model, &cfg),
            "{}",
            test.name()
        );
    }
}

#[test]
fn streaming_matches_materialised_for_native_models() {
    // NativePtxModel has no compiled plan, so the streaming path judges
    // it through the default `allows_view` (materialise + `allows`) —
    // the fallback every third-party `Model` impl gets.
    let cfg = EnumConfig::default();
    let model = NativePtxModel::new();
    for test in test_suite() {
        assert_eq!(
            model_outcomes(&test, &model, &cfg).unwrap(),
            materialised_outcomes(&test, &model, &cfg),
            "{}",
            test.name()
        );
    }
}
