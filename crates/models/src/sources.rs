//! The `.cat` sources of the shipped models.
//!
//! [`PTX_CAT`] is the concatenation of the paper's Fig. 15 (SPARC RMO with
//! the load-load hazard) and Fig. 16 (RMO per scope), transliterated with
//! long keyword spellings (`acyclic`, `ctrl`, `com`).

/// The paper's PTX model (Figs. 15 + 16).
pub const PTX_CAT: &str = "\
(* Fig. 15: SPARC RMO with load-load hazard *)
let com = rf | co | fr
let po-loc-llh = WW(po-loc) | WR(po-loc) | RW(po-loc)
acyclic (po-loc-llh | com) as sc-per-loc-llh
let dp = addr | data | ctrl
acyclic (dp | rf) as no-thin-air
let rmo(fence) = dp | fence | rfe | co | fr
(* Fig. 16: RMO per scope *)
let sys-fence = membar.sys
let gl-fence = membar.gl | sys-fence
let cta-fence = membar.cta | gl-fence
let rmo-cta = rmo(cta-fence) & cta
let rmo-gl = rmo(gl-fence) & gl
let rmo-sys = rmo(sys-fence) & sys
acyclic rmo-cta as cta-constraint
acyclic rmo-gl as gl-constraint
acyclic rmo-sys as sys-constraint
";

/// Lamport sequential consistency.
pub const SC_CAT: &str = "\
let com = rf | co | fr
acyclic (po | com) as sc
";

/// x86-TSO-style total store order: write→read pairs may reorder unless
/// fenced; everything else is preserved.
pub const TSO_CAT: &str = "\
let com = rf | co | fr
acyclic (po-loc | com) as sc-per-loc
let fence = membar.cta | membar.gl | membar.sys
let ppo = po \\ WR(po)
acyclic (ppo | fence | rfe | co | fr) as tso
";

/// Plain (unscoped) SPARC RMO: Fig. 15 with all fences global.
pub const RMO_CAT: &str = "\
let com = rf | co | fr
let po-loc-llh = WW(po-loc) | WR(po-loc) | RW(po-loc)
acyclic (po-loc-llh | com) as sc-per-loc-llh
let dp = addr | data | ctrl
acyclic (dp | rf) as no-thin-air
let rmo(fence) = dp | fence | rfe | co | fr
let all-fence = membar.cta | membar.gl | membar.sys
acyclic rmo(all-fence) as rmo-constraint
";

/// The PTX model *without* the load-load hazard: SC-per-location keeps
/// read-read pairs (`acyclic (po-loc | com)`), as nearly all CPU models
/// do. Forbids `coRR` — which Fermi/Kepler exhibit — so this variant is
/// unsound; it demonstrates that excluding read-read pairs (Fig. 15,
/// line 3) is *necessary*, not stylistic.
pub const PTX_NO_LLH_CAT: &str = "\
let com = rf | co | fr
acyclic (po-loc | com) as sc-per-loc
let dp = addr | data | ctrl
acyclic (dp | rf) as no-thin-air
let rmo(fence) = dp | fence | rfe | co | fr
let sys-fence = membar.sys
let gl-fence = membar.gl | sys-fence
let cta-fence = membar.cta | gl-fence
let rmo-cta = rmo(cta-fence) & cta
let rmo-gl = rmo(gl-fence) & gl
let rmo-sys = rmo(sys-fence) & sys
acyclic rmo-cta as cta-constraint
acyclic rmo-gl as gl-constraint
acyclic rmo-sys as sys-constraint
";

/// The operational baseline of Sorensen et al. (Sec. 6), rendered
/// axiomatically: RMO in which a fence of *any* scope orders accesses for
/// all observers. Unsound w.r.t. hardware on inter-CTA `lb+membar.ctas`.
pub const OPERATIONAL_CAT: &str = "\
let com = rf | co | fr
let po-loc-llh = WW(po-loc) | WR(po-loc) | RW(po-loc)
acyclic (po-loc-llh | com) as sc-per-loc-llh
let dp = addr | data | ctrl
acyclic (dp | rf) as no-thin-air
let anyfence = membar.cta | membar.gl | membar.sys
acyclic (dp | anyfence | rfe | co | fr) as op-constraint
";

/// Every shipped `.cat` source, by model name. `weakgpu check --builtin`
/// lints this list.
pub const ALL: &[(&str, &str)] = &[
    ("ptx", PTX_CAT),
    ("sc", SC_CAT),
    ("tso", TSO_CAT),
    ("rmo", RMO_CAT),
    ("ptx-no-llh", PTX_NO_LLH_CAT),
    ("operational", OPERATIONAL_CAT),
];

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_axiom::cat::CatProgram;

    #[test]
    fn all_sources_parse() {
        for &(name, src) in ALL {
            let p = CatProgram::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!p.check_names().is_empty(), "{name} has no checks");
        }
    }

    #[test]
    fn ptx_has_the_paper_checks() {
        let p = CatProgram::parse(PTX_CAT).unwrap();
        assert_eq!(
            p.check_names(),
            vec![
                "sc-per-loc-llh",
                "no-thin-air",
                "cta-constraint",
                "gl-constraint",
                "sys-constraint"
            ]
        );
    }
}
