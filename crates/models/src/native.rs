//! A native implementation of the paper's PTX model, built directly on the
//! relation algebra instead of interpreting `.cat` source.
//!
//! Exists for two reasons:
//!
//! 1. **Cross-validation**: tests assert it agrees with the `.cat`
//!    interpretation on every candidate execution of the corpus, guarding
//!    both the interpreter and the transliteration of Figs. 15–16.
//! 2. **Ablation**: the bench suite compares its evaluation cost against
//!    the interpreted model (DESIGN.md §5.3).

use weakgpu_axiom::relation::Relation;
use weakgpu_axiom::{Execution, Model, RmwAtomicity};
use weakgpu_litmus::FenceScope;

/// The PTX model of Figs. 15–16, hard-coded.
#[derive(Clone, Copy, Debug, Default)]
pub struct NativePtxModel;

impl NativePtxModel {
    /// Creates the model.
    pub fn new() -> Self {
        NativePtxModel
    }

    fn dp(exec: &Execution) -> Relation {
        exec.addr.union(&exec.data).union(&exec.ctrl)
    }

    fn rmo(exec: &Execution, fence: &Relation) -> Relation {
        let rf = exec.rf_rel();
        let ext = exec.ext();
        Self::dp(exec)
            .union(fence)
            .union(&rf.inter(&ext))
            .union(&exec.co_rel())
            .union(&exec.fr())
    }
}

impl Model for NativePtxModel {
    fn name(&self) -> &str {
        "ptx-rmo-scoped (native)"
    }

    fn allows(&self, exec: &Execution) -> bool {
        if !exec.rmw_atomicity_holds(RmwAtomicity::AmongAtomics) {
            return false;
        }
        let reads = exec.read_set();
        let writes = exec.write_set();
        let po_loc = exec.po_loc();
        let com = exec.rf_rel().union(&exec.co_rel()).union(&exec.fr());

        // sc-per-loc-llh: program order per location minus read-read pairs.
        let po_loc_llh = po_loc
            .restrict(&writes, &writes)
            .union(&po_loc.restrict(&writes, &reads))
            .union(&po_loc.restrict(&reads, &writes));
        if !po_loc_llh.union(&com).is_acyclic() {
            return false;
        }

        // no-thin-air.
        if !Self::dp(exec).union(&exec.rf_rel()).is_acyclic() {
            return false;
        }

        // RMO per scope.
        let sys_fence = exec.fence_rel(FenceScope::Sys);
        let gl_fence = exec.fence_rel(FenceScope::Gl).union(&sys_fence);
        let cta_fence = exec.fence_rel(FenceScope::Cta).union(&gl_fence);

        let rmo_cta = Self::rmo(exec, &cta_fence).inter(&exec.scope_cta());
        let rmo_gl = Self::rmo(exec, &gl_fence).inter(&exec.scope_gl());
        let rmo_sys = Self::rmo(exec, &sys_fence).inter(&exec.scope_sys());
        rmo_cta.is_acyclic() && rmo_gl.is_acyclic() && rmo_sys.is_acyclic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptx_model;
    use weakgpu_axiom::enumerate::enumerate_executions;
    use weakgpu_axiom::EnumConfig;
    use weakgpu_litmus::{corpus, FenceScope as FS, ThreadScope};

    #[test]
    fn native_agrees_with_cat_on_whole_corpus() {
        let cat = ptx_model();
        let native = NativePtxModel::new();
        let cfg = EnumConfig::default();
        for test in corpus::all() {
            let cands = enumerate_executions(&test, &cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", test.name()));
            for (i, c) in cands.iter().enumerate() {
                assert_eq!(
                    cat.allows(&c.execution),
                    native.allows(&c.execution),
                    "{}: divergence on candidate {i} ({})",
                    test.name(),
                    c.outcome
                );
            }
        }
    }

    #[test]
    fn native_verdicts_on_key_tests() {
        use weakgpu_axiom::model_outcomes;
        let m = NativePtxModel::new();
        let cfg = EnumConfig::default();
        assert!(
            model_outcomes(&corpus::corr(), &m, &cfg)
                .unwrap()
                .condition_witnessed
        );
        assert!(
            !model_outcomes(&corpus::mp(ThreadScope::InterCta, Some(FS::Gl)), &m, &cfg)
                .unwrap()
                .condition_witnessed
        );
        assert!(
            model_outcomes(&corpus::lb(ThreadScope::InterCta, Some(FS::Cta)), &m, &cfg)
                .unwrap()
                .condition_witnessed
        );
    }
}
