//! Memory consistency models for GPU litmus tests.
//!
//! The centrepiece is the paper's **PTX model** ([`ptx_model`]): SPARC RMO
//! restructured along the GPU scope hierarchy (paper Sec. 5, Figs. 15–16),
//! duplicating the RMO acyclicity constraint at the CTA, GPU (`gl`) and
//! system scopes. Alongside it:
//!
//! * [`sc_model`] — Lamport sequential consistency;
//! * [`tso_model`] — x86-TSO-style total store order;
//! * [`rmo_model`] — plain (unscoped) SPARC RMO;
//! * [`operational_baseline`] — an axiomatic rendering of the operational
//!   model of Sorensen et al., which the paper shows is **unsound**: it
//!   forbids the inter-CTA `lb+membar.ctas` behaviour that hardware
//!   exhibits (Sec. 6);
//! * [`native::NativePtxModel`] — the PTX model implemented directly
//!   against the relation algebra (no `.cat` interpretation), used to
//!   cross-check the interpreter and as a performance-ablation baseline.
//!
//! ```
//! use weakgpu_models::ptx_model;
//! use weakgpu_axiom::{model_outcomes, EnumConfig};
//! use weakgpu_litmus::corpus;
//!
//! // The PTX model allows coRR (read-read coherence violations) …
//! let out = model_outcomes(&corpus::corr(), &ptx_model(), &EnumConfig::default()).unwrap();
//! assert!(out.condition_witnessed);
//! ```

pub mod native;
pub mod sources;

use std::sync::{Arc, OnceLock};

use weakgpu_axiom::{CatModel, RmwAtomicity};

/// Builds (once) and shares a registry-backed model: the `.cat` source
/// is parsed and compiled into its evaluation plan on the first call in
/// the process; every later call — from any thread, worker or sweep —
/// clones the same [`Arc`].
macro_rules! registry_model {
    ($build:expr) => {{
        static MODEL: OnceLock<Arc<CatModel>> = OnceLock::new();
        Arc::clone(MODEL.get_or_init(|| Arc::new($build)))
    }};
}

/// The paper's PTX model: RMO per scope (Figs. 15 and 16), with
/// PTX-semantics RMW atomicity (atomics are only atomic against other
/// atomics, Sec. 3.2.3).
///
/// Parsed and compiled once per process; subsequent calls return the
/// shared [`Arc`] from the lazy registry.
pub fn ptx_model() -> Arc<CatModel> {
    registry_model!(CatModel::new("ptx-rmo-scoped", sources::PTX_CAT)
        .expect("embedded PTX model parses")
        .with_rmw_atomicity(RmwAtomicity::AmongAtomics))
}

/// Sequential consistency (Lamport): all communication and program order
/// embed into one total order.
pub fn sc_model() -> Arc<CatModel> {
    registry_model!(CatModel::new("sc", sources::SC_CAT)
        .expect("embedded SC model parses")
        .with_rmw_atomicity(RmwAtomicity::Full))
}

/// Total store order in the x86-TSO style: only write→read pairs may
/// reorder, and any `membar` restores them.
pub fn tso_model() -> Arc<CatModel> {
    registry_model!(CatModel::new("tso", sources::TSO_CAT)
        .expect("embedded TSO model parses")
        .with_rmw_atomicity(RmwAtomicity::Full))
}

/// Plain SPARC RMO (Fig. 15 alone, with every fence scope treated as a
/// full fence): the CPU model the paper's GPU model generalises.
pub fn rmo_model() -> Arc<CatModel> {
    registry_model!(CatModel::new("rmo", sources::RMO_CAT)
        .expect("embedded RMO model parses")
        .with_rmw_atomicity(RmwAtomicity::AmongAtomics))
}

/// The PTX model with the load-load hazard *removed* (read-read pairs
/// back in SC-per-location) — an unsound ablation variant showing the
/// hazard exclusion is forced by the `coRR` observations (Fig. 1).
pub fn ptx_model_without_llh() -> Arc<CatModel> {
    registry_model!(
        CatModel::new("ptx-no-llh (ablation)", sources::PTX_NO_LLH_CAT)
            .expect("embedded ablation model parses")
            .with_rmw_atomicity(RmwAtomicity::AmongAtomics)
    )
}

/// An axiomatic rendering of the operational GPU model of Sorensen et
/// al. (paper Sec. 6): like RMO, but fences order accesses for *all*
/// observers regardless of scope.
///
/// The paper shows this model is unsound w.r.t. hardware: it forbids
/// inter-CTA `lb+membar.ctas`, observed 586 times on GTX Titan.
pub fn operational_baseline() -> Arc<CatModel> {
    registry_model!(
        CatModel::new("operational-baseline", sources::OPERATIONAL_CAT)
            .expect("embedded operational model parses")
            .with_rmw_atomicity(RmwAtomicity::AmongAtomics)
    )
}

/// Every registry model, for sweeps.
pub fn all_models() -> Vec<Arc<CatModel>> {
    vec![
        ptx_model(),
        sc_model(),
        tso_model(),
        rmo_model(),
        operational_baseline(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakgpu_axiom::{model_outcomes, EnumConfig, Model};
    use weakgpu_litmus::{corpus, FenceScope, LitmusTest, ThreadScope};

    fn witnessed(test: &LitmusTest, model: &dyn Model) -> bool {
        model_outcomes(test, model, &EnumConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", test.name()))
            .condition_witnessed
    }

    // ---------------------------------------------------------- PTX model

    #[test]
    fn ptx_allows_corr() {
        assert!(witnessed(&corpus::corr(), &ptx_model()));
    }

    #[test]
    fn ptx_forbids_corr_with_gl_fence() {
        // With `.cg` loads, a gl fence between the reads closes the
        // rmo-gl cycle (W →rfe r1 →fence r2 →fr W), so the model forbids
        // fenced coRR. (The paper's Fig. 4 hardware counterexample uses an
        // `.ca` second load, which the model deliberately excludes —
        // Sec. 5.5.)
        assert!(!witnessed(
            &corpus::corr_fenced(FenceScope::Gl),
            &ptx_model()
        ));
        // Unfenced coRR stays allowed — the load-load hazard.
        assert!(witnessed(&corpus::corr(), &ptx_model()));
    }

    #[test]
    fn ptx_allows_unfenced_idioms() {
        let m = ptx_model();
        for test in [
            corpus::mp(ThreadScope::InterCta, None),
            corpus::mp(ThreadScope::IntraCta, None),
            corpus::sb(ThreadScope::InterCta, None),
            corpus::lb(ThreadScope::InterCta, None),
            corpus::dlb_mp(false),
            corpus::dlb_lb(false),
            corpus::cas_sl(false),
            corpus::exch_sl(false),
            corpus::sl_future(false),
        ] {
            assert!(witnessed(&test, &m), "PTX model must allow {}", test.name());
        }
    }

    #[test]
    fn ptx_forbids_gl_fenced_idioms() {
        let m = ptx_model();
        for test in [
            corpus::mp(ThreadScope::InterCta, Some(FenceScope::Gl)),
            corpus::mp(ThreadScope::InterCta, Some(FenceScope::Sys)),
            corpus::sb(ThreadScope::InterCta, Some(FenceScope::Gl)),
            corpus::lb(ThreadScope::InterCta, Some(FenceScope::Gl)),
            corpus::dlb_mp(true),
            corpus::dlb_lb(true),
            corpus::cas_sl(true),
            corpus::exch_sl(true),
            corpus::sl_future(true),
        ] {
            assert!(
                !witnessed(&test, &m),
                "PTX model must forbid {}",
                test.name()
            );
        }
    }

    #[test]
    fn ptx_scope_sensitivity_of_cta_fences() {
        let m = ptx_model();
        // membar.cta suffices within a CTA …
        assert!(!witnessed(
            &corpus::mp(ThreadScope::IntraCta, Some(FenceScope::Cta)),
            &m
        ));
        // … but not across CTAs (the paper's hardware shows mp with cta
        // fences on Titan, 1696/100k; the model must allow it).
        assert!(witnessed(
            &corpus::mp(ThreadScope::InterCta, Some(FenceScope::Cta)),
            &m
        ));
    }

    #[test]
    fn ptx_allows_inter_cta_lb_with_cta_fences() {
        // The Sec. 6 distinguishing test: observed on hardware, must be
        // allowed by the paper's model.
        let test = corpus::lb(ThreadScope::InterCta, Some(FenceScope::Cta));
        assert!(witnessed(&test, &ptx_model()));
    }

    #[test]
    fn ptx_fence_plus_dependency_fixes_mp() {
        let m = ptx_model();
        assert!(!witnessed(
            &corpus::mp_dep(ThreadScope::InterCta, FenceScope::Gl),
            &m
        ));
        // A cta-scoped fence with the dependency still leaks across CTAs.
        assert!(witnessed(
            &corpus::mp_dep(ThreadScope::InterCta, FenceScope::Cta),
            &m
        ));
    }

    // ------------------------------------------------------- baselines

    #[test]
    fn sc_forbids_everything_weak() {
        let m = sc_model();
        for test in [
            corpus::corr(),
            corpus::mp(ThreadScope::InterCta, None),
            corpus::sb(ThreadScope::InterCta, None),
            corpus::lb(ThreadScope::InterCta, None),
            corpus::cas_sl(false),
            corpus::sl_future(false),
        ] {
            assert!(!witnessed(&test, &m), "SC must forbid {}", test.name());
        }
    }

    #[test]
    fn tso_allows_only_store_buffering() {
        let m = tso_model();
        assert!(witnessed(&corpus::sb(ThreadScope::InterCta, None), &m));
        assert!(!witnessed(&corpus::mp(ThreadScope::InterCta, None), &m));
        assert!(!witnessed(&corpus::lb(ThreadScope::InterCta, None), &m));
        assert!(!witnessed(&corpus::corr(), &m));
        // Fences restore sb under TSO.
        assert!(!witnessed(
            &corpus::sb(ThreadScope::InterCta, Some(FenceScope::Cta)),
            &m
        ));
    }

    #[test]
    fn rmo_ignores_scopes() {
        let m = rmo_model();
        // Plain RMO: any fence forbids mp, even cta-scoped inter-CTA —
        // exactly the scope-blindness the paper's model fixes.
        assert!(!witnessed(
            &corpus::mp(ThreadScope::InterCta, Some(FenceScope::Cta)),
            &m
        ));
        assert!(witnessed(&corpus::mp(ThreadScope::InterCta, None), &m));
        assert!(witnessed(&corpus::corr(), &m));
    }

    #[test]
    fn llh_ablation_forbids_corr_but_matches_elsewhere() {
        let ablated = ptx_model_without_llh();
        // Without the load-load hazard, coRR is forbidden …
        assert!(!witnessed(&corpus::corr(), &ablated));
        // … while everything not involving same-location read pairs keeps
        // the full model's verdicts.
        assert_eq!(
            witnessed(&corpus::mp(ThreadScope::InterCta, None), &ablated),
            witnessed(&corpus::mp(ThreadScope::InterCta, None), &ptx_model())
        );
        assert_eq!(
            witnessed(
                &corpus::lb(ThreadScope::InterCta, Some(FenceScope::Cta)),
                &ablated
            ),
            witnessed(
                &corpus::lb(ThreadScope::InterCta, Some(FenceScope::Cta)),
                &ptx_model()
            )
        );
    }

    #[test]
    fn operational_baseline_is_stronger_than_ptx_on_lb_ctas() {
        // The unsoundness witness of Sec. 6.
        let test = corpus::lb(ThreadScope::InterCta, Some(FenceScope::Cta));
        assert!(witnessed(&test, &ptx_model()));
        assert!(!witnessed(&test, &operational_baseline()));
    }

    #[test]
    fn all_models_ship_precompiled_plans() {
        // Every shipped model compiles its `.cat` source into an
        // evaluation plan at construction; the plan's instruction stream
        // is non-trivial (CSE notwithstanding) and reads only base
        // relations the execution layer defines.
        use std::collections::BTreeSet;
        let known: BTreeSet<&str> = [
            "po",
            "po-loc",
            "addr",
            "data",
            "ctrl",
            "rmw",
            "rf",
            "rfe",
            "rfi",
            "co",
            "coe",
            "coi",
            "fr",
            "fre",
            "fri",
            "ext",
            "int",
            "loc",
            "id",
            "membar.cta",
            "membar.gl",
            "membar.sys",
            "cta",
            "gl",
            "sys",
        ]
        .into_iter()
        .collect();
        for m in all_models() {
            let plan = m.plan();
            assert!(plan.num_ops() > 0, "{} has an empty plan", Model::name(&m));
            for base in plan.base_names() {
                assert!(
                    known.contains(base),
                    "{} reads unknown base {base:?}",
                    Model::name(&m)
                );
            }
        }
    }

    #[test]
    fn all_models_allow_sc_outcomes() {
        // Sanity: every model allows the trivially sequential outcome of mp
        // (r1=1, r2=1).
        let test = corpus::mp(ThreadScope::InterCta, None);
        for m in all_models() {
            let out = model_outcomes(&test, &m, &EnumConfig::default()).unwrap();
            assert!(out.num_allowed > 0, "{} allows nothing", Model::name(&m));
            let strong: Vec<_> = out
                .allowed_outcomes
                .iter()
                .filter(|o| o.iter().all(|(_, v)| v == 1))
                .collect();
            assert!(
                !strong.is_empty(),
                "{} forbids the SC outcome",
                Model::name(&m)
            );
        }
    }

    #[test]
    fn model_strength_ordering_on_corpus() {
        // SC ⊆ TSO ⊆ RMO ⊆ PTX in terms of allowed outcomes, on the
        // two-thread corpus idioms.
        let cfg = EnumConfig::default();
        for test in [
            corpus::corr(),
            corpus::mp(ThreadScope::InterCta, None),
            corpus::sb(ThreadScope::InterCta, None),
            corpus::lb(ThreadScope::InterCta, None),
        ] {
            let sc = model_outcomes(&test, &sc_model(), &cfg).unwrap();
            let tso = model_outcomes(&test, &tso_model(), &cfg).unwrap();
            let rmo = model_outcomes(&test, &rmo_model(), &cfg).unwrap();
            let ptx = model_outcomes(&test, &ptx_model(), &cfg).unwrap();
            assert!(
                sc.allowed_outcomes.is_subset(&tso.allowed_outcomes),
                "SC ⊄ TSO on {}",
                test.name()
            );
            assert!(
                tso.allowed_outcomes.is_subset(&rmo.allowed_outcomes),
                "TSO ⊄ RMO on {}",
                test.name()
            );
            assert!(
                rmo.allowed_outcomes.is_subset(&ptx.allowed_outcomes),
                "RMO ⊄ PTX on {}",
                test.name()
            );
        }
    }
}
